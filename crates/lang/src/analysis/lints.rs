//! Style lints over checked programs, with per-node suppression.
//!
//! Three lints ride on the check pipeline (all severity
//! [`Severity::Lint`](crate::diag::Severity), so they never fail a build):
//!
//! * `unused-stream` ([`Code::LINT_UNUSED_STREAM`]) — an equation defines
//!   a stream nothing reads.
//! * `observe-constant` ([`Code::LINT_OBSERVE_CONST`]) — an `observe`
//!   whose distribution and value are both compile-time constants.
//! * `resample-free-infer` ([`Code::LINT_RESAMPLE_FREE`]) — `infer` of a
//!   node that never conditions (no `observe`/`factor`, transitively).
//!
//! A lint (or the `unbounded-chain` warning) is suppressed by an allow
//! directive comment inside the offending node:
//!
//! ```text
//! (*@ allow unused-stream *)
//! ```
//!
//! A directive before the first node applies to the whole file.

use crate::analysis::bounded::BoundedReport;
use crate::analysis::{walk, walk_at};
use crate::ast::{Eq, Expr, Program};
use crate::diag::{lint_name, Code, Diagnostic};
use crate::kinds::Kind;
use crate::lexer::collect_allows;
use std::collections::{HashMap, HashSet};

/// Runs all lints over a checked program.
///
/// `program` is the automata-expanded surface program (before
/// desugaring, so equations are the ones the user wrote); `report` comes
/// from [`crate::analysis::bounded::analyze_program`]. Suppression
/// directives are honored; results are sorted by source position.
pub fn lint_program(
    src: &str,
    program: &Program,
    kinds: &HashMap<String, Kind>,
    report: &BoundedReport,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    unused_streams(program, &mut out);
    observe_constants(report, &mut out);
    resample_free_infers(program, kinds, &mut out);
    filter_suppressed(src, out)
}

/// Drops diagnostics suppressed by `(*@ allow lint-name *)` directives.
/// Applies to any diagnostic whose code has a lint name (including the
/// `unbounded-chain` warning); position-less diagnostics only respond to
/// file-level directives.
pub fn filter_suppressed(src: &str, mut diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let allows = collect_allows(src);
    if !allows.is_empty() {
        let starts = node_start_lines(src);
        let scope_of = |line: u32| starts.partition_point(|s| *s <= line);
        diags.retain(|d| {
            let Some(name) = lint_name(d.code) else {
                return true;
            };
            let scope = d.pos.map(|p| scope_of(p.line));
            !allows.iter().any(|a| {
                a.names.iter().any(|n| n == name) && {
                    let a_scope = scope_of(a.pos.line);
                    a_scope == 0 || Some(a_scope) == scope
                }
            })
        });
    }
    diags.sort_by_key(|d| {
        (
            d.pos.map_or((u32::MAX, u32::MAX), |p| (p.line, p.col)),
            d.code.0,
        )
    });
    diags
}

/// 1-based line numbers at which `let node` declarations start, in order.
fn node_start_lines(src: &str) -> Vec<u32> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let mut words = line.split_whitespace();
        if words.next() == Some("let") && words.next() == Some("node") {
            out.push(i as u32 + 1);
        }
    }
    out
}

fn unused_streams(program: &Program, out: &mut Vec<Diagnostic>) {
    for node in &program.nodes {
        walk(&node.body, &mut |e| {
            let Expr::Where { body, eqs } = e else {
                return;
            };
            // Reads per source: the block's body, and each definition
            // attributed to the variable it defines (self-reads like
            // `x = 0. -> pre x` don't count as uses of `x`).
            let mut body_reads = Vec::new();
            crate::analysis::collect_reads(body, &mut body_reads);
            let body_reads: HashSet<String> = body_reads.into_iter().collect();
            let mut def_reads: Vec<(String, HashSet<String>)> = Vec::new();
            for eq in eqs {
                if let Eq::Def { name, expr } = eq {
                    let mut reads = Vec::new();
                    crate::analysis::collect_reads(expr, &mut reads);
                    def_reads.push((name.clone(), reads.into_iter().collect()));
                }
            }
            for eq in eqs {
                let Eq::Def { name, expr } = eq else { continue };
                if name.starts_with('_') {
                    continue;
                }
                let used = body_reads.contains(name)
                    || def_reads
                        .iter()
                        .any(|(other, reads)| other != name && reads.contains(name));
                if !used {
                    out.push(
                        Diagnostic::lint(
                            Code::LINT_UNUSED_STREAM,
                            format!(
                                "stream `{name}` is defined but never used (in node `{}`)",
                                node.name
                            ),
                        )
                        .with_pos(expr.span())
                        .with_note(
                            "prefix the name with `_`, remove the equation, or add \
                             `(*@ allow unused-stream *)`",
                        ),
                    );
                }
            }
        });
    }
}

fn observe_constants(report: &BoundedReport, out: &mut Vec<Diagnostic>) {
    for co in &report.const_observes {
        out.push(
            Diagnostic::lint(
                Code::LINT_OBSERVE_CONST,
                format!(
                    "`observe` of a constant distribution against a constant value \
                     conditions nothing (in node `{}`)",
                    co.node
                ),
            )
            .with_pos(co.pos)
            .with_note("the weight it contributes is the same for every particle"),
        );
    }
}

fn resample_free_infers(
    program: &Program,
    kinds: &HashMap<String, Kind>,
    out: &mut Vec<Diagnostic>,
) {
    let mut sites: Vec<(String, Option<crate::error::Pos>)> = Vec::new();
    for node in &program.nodes {
        walk_at(&node.body, None, &mut |e, pos| {
            if let Expr::Infer { node: f, .. } = e {
                sites.push((f.clone(), pos));
            }
        });
    }
    let mut reported: HashSet<String> = HashSet::new();
    for (f, pos) in sites {
        if kinds.get(f.as_str()) != Some(&Kind::P) || !reported.insert(f.clone()) {
            continue;
        }
        let mut seen = HashSet::new();
        if !conditions(program, &f, &mut seen) {
            out.push(
                Diagnostic::lint(
                    Code::LINT_RESAMPLE_FREE,
                    format!(
                        "node `{f}` never observes or factors; `infer` will never \
                         reweight or resample its particles"
                    ),
                )
                .with_pos(pos)
                .with_note("every particle keeps weight 1, so the posterior is the prior"),
            );
        }
    }
}

/// Whether node `f` conditions the posterior (contains `observe` or
/// `factor`), directly or through an applied node.
fn conditions(program: &Program, f: &str, seen: &mut HashSet<String>) -> bool {
    if !seen.insert(f.to_string()) {
        return false;
    }
    let Some(decl) = program.node(f) else {
        return false;
    };
    let mut found = false;
    let mut apps: Vec<String> = Vec::new();
    walk(&decl.body, &mut |e| match e {
        Expr::Observe(_, _) | Expr::Factor(_) => found = true,
        Expr::App(g, _) => apps.push(g.clone()),
        _ => {}
    });
    found || apps.iter().any(|g| conditions(program, g, seen))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::bounded;
    use crate::kinds;
    use crate::parser::parse_program;
    use crate::schedule::schedule_program;
    use crate::transform::desugar_program;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let p = parse_program(src).unwrap();
        let p = crate::automata::expand_program(&p).unwrap();
        let kinds = kinds::check_program(&p).unwrap();
        let kernel = desugar_program(&p);
        let kernel = schedule_program(&kernel).unwrap();
        let report = bounded::analyze_program(&kernel, &kinds);
        lint_program(src, &p, &kinds, &report)
    }

    #[test]
    fn unused_stream_is_linted_and_underscore_escapes() {
        let diags = lint("let node f x = y where rec y = x + 1. and dead = x * 2.");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::LINT_UNUSED_STREAM);
        assert!(diags[0].message.contains("`dead`"));
        let diags = lint("let node f x = y where rec y = x + 1. and _dead = x * 2.");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn self_read_does_not_count_as_a_use() {
        let diags = lint("let node f x = y where rec y = x + 1. and dead = 0. -> pre dead");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::LINT_UNUSED_STREAM);
    }

    #[test]
    fn observe_constant_is_linted() {
        let diags = lint("let node f y = observe (gaussian (0., 1.), 2.)");
        assert!(diags.iter().any(|d| d.code == Code::LINT_OBSERVE_CONST));
    }

    #[test]
    fn resample_free_infer_is_linted() {
        let src = r#"
            let node prior () = sample (gaussian (0., 1.))
            let node main () = infer 10 prior ()
        "#;
        let diags = lint(src);
        assert!(
            diags.iter().any(|d| d.code == Code::LINT_RESAMPLE_FREE),
            "{diags:?}"
        );
        // Conditioning through an applied node clears it.
        let src = r#"
            let node noisy x = observe (gaussian (x, 1.), 0.)
            let node model () = x where
              rec x = sample (gaussian (0., 1.))
              and () = noisy (x)
            let node main () = infer 10 model ()
        "#;
        let diags = lint(src);
        assert!(
            !diags.iter().any(|d| d.code == Code::LINT_RESAMPLE_FREE),
            "{diags:?}"
        );
    }

    #[test]
    fn allow_directive_suppresses_within_its_node_only() {
        let src = "let node f x = y where rec y = x + 1. and dead = x * 2.\n\
                   let node g x = y where\n  \
                   (*@ allow unused-stream *)\n  \
                   rec y = x + 1. and dead = x * 2.\n";
        let diags = lint(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].pos.unwrap().line, 1);
    }

    #[test]
    fn file_level_allow_suppresses_everywhere() {
        let src = "(*@ allow unused-stream *)\n\
                   let node f x = y where rec y = x + 1. and dead = x * 2.\n";
        assert!(lint(src).is_empty());
    }
}
