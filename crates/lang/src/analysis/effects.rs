//! Effect and particle-invariance analysis (the second static-analysis
//! layer, DESIGN.md §2.12).
//!
//! The **effect analysis** classifies every node, top-level equation, and
//! subexpression of the scheduled kernel on a three-point lattice
//!
//! ```text
//! Pure  <  Det  <  Prob
//! ```
//!
//! * [`Effect::Pure`] — a closed expression: no variable or state reads,
//!   no node applications, no effects. Constant-foldable at compile time.
//! * [`Effect::Det`] — deterministic dataflow: may read streams, `last`
//!   state, apply deterministic nodes, or allocate engines (`infer`), but
//!   never touches the particle RNG or the particle weight.
//! * [`Effect::Prob`] — reaches `sample`, `observe`, `factor`, `value`,
//!   a driver-level draw, or applies a node that does.
//!
//! Like [`super::bounded`], node summaries are computed in declaration
//! order so applications join the callee's summary.
//!
//! The **particle-invariance analysis** builds on it: a top-level
//! equation of a node is *invariant* when its value is the same in every
//! particle — its effect is at most `Det`, it allocates no engine, and
//! every stream it reads (instantaneously or through `last`) is a node
//! input or another invariant equation. Invariant equations are what the
//! optimizer's prelude hoist ([`crate::transform::opt`]) evaluates once
//! per tick and broadcasts to all N particles.

use crate::ast::{Eq, Expr, OpName, Program};
use crate::error::Pos;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Three-point effect lattice; the derived order is the lattice order,
/// so `a.max(b)` is the join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Effect {
    /// Closed, constant-foldable expression.
    Pure,
    /// Deterministic dataflow (streams, state, engine allocation).
    Det,
    /// Reaches `sample`/`observe`/`factor`/`value` or a stochastic op.
    Prob,
}

impl std::fmt::Display for Effect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Effect::Pure => write!(f, "pure"),
            Effect::Det => write!(f, "det"),
            Effect::Prob => write!(f, "prob"),
        }
    }
}

/// Effect and invariance facts for one top-level equation of a node.
#[derive(Debug, Clone)]
pub struct EqEffect {
    /// Defined stream.
    pub name: String,
    /// Join over the right-hand side.
    pub effect: Effect,
    /// Nearest span of the right-hand side, for diagnostics.
    pub pos: Option<Pos>,
    /// Identical across all particles (see module docs).
    pub invariant: bool,
}

/// Whole-program result of the effect & invariance analysis.
#[derive(Debug, Clone, Default)]
pub struct EffectReport {
    /// Per-node effect summary (the join over the node body).
    pub node_effects: HashMap<String, Effect>,
    /// Per-node facts about the top-level equations of the body's
    /// outermost `where`, in scheduled order. Nodes whose body is not a
    /// `where` map to an empty list.
    pub eq_effects: HashMap<String, Vec<EqEffect>>,
    /// Per-node set of particle-invariant top-level streams (the
    /// `invariant` equations of [`EffectReport::eq_effects`], as a set).
    pub invariant: HashMap<String, BTreeSet<String>>,
    /// Nodes that (transitively) allocate an inference engine. Engine
    /// state is per-particle identity, so these are never hoisted.
    pub uses_engine: HashSet<String>,
}

impl EffectReport {
    /// The effect of `node`, defaulting to `Prob` for unknown names
    /// (soundness: assume the worst of what we cannot see).
    pub fn node_effect(&self, node: &str) -> Effect {
        self.node_effects.get(node).copied().unwrap_or(Effect::Prob)
    }

    /// Callee summaries for per-subexpression [`effect_of`] queries.
    pub fn summaries(&self) -> Summaries<'_> {
        Summaries {
            effects: &self.node_effects,
            uses_engine: &self.uses_engine,
        }
    }
}

/// Per-node callee summaries threaded through expression classification.
#[derive(Debug, Clone, Copy)]
pub struct Summaries<'a> {
    effects: &'a HashMap<String, Effect>,
    uses_engine: &'a HashSet<String>,
}

impl Summaries<'_> {
    fn effect(&self, node: &str) -> Effect {
        self.effects.get(node).copied().unwrap_or(Effect::Prob)
    }

    fn engine(&self, node: &str) -> bool {
        // Unknown callees count as engine users: never hoist blind.
        !self.effects.contains_key(node) || self.uses_engine.contains(node)
    }
}

/// Join of the effect lattice over one expression, given callee
/// summaries. This is the per-subexpression query the optimizer passes
/// use to decide what is safe to move or delete.
pub fn effect_of(e: &Expr, s: Summaries<'_>) -> Effect {
    match e {
        Expr::Const(_) => Effect::Pure,
        // Stream and state reads are deterministic but particle-local
        // until invariance proves otherwise.
        Expr::Var(_) | Expr::Last(_) => Effect::Det,
        Expr::At(inner, _) => effect_of(inner, s),
        Expr::Pair(a, b) => effect_of(a, s).max(effect_of(b, s)),
        // A driver-level draw consumes the shared interpreter RNG: moving
        // or deleting it would shift every later draw.
        Expr::Op(OpName::DrawDist, args) => args
            .iter()
            .fold(Effect::Prob, |acc, a| acc.max(effect_of(a, s))),
        Expr::Op(_, args) => args
            .iter()
            .fold(Effect::Pure, |acc, a| acc.max(effect_of(a, s))),
        Expr::App(f, arg) => s.effect(f).max(Effect::Det).max(effect_of(arg, s)),
        // Engine allocation and stepping is deterministic (dedicated
        // seed domain) but stateful.
        Expr::Infer { arg, .. } => Effect::Det.max(effect_of(arg, s)),
        Expr::Where { body, eqs } => {
            let mut acc = effect_of(body, s);
            for eq in eqs {
                acc = acc.max(match eq {
                    Eq::Def { expr, .. } => effect_of(expr, s),
                    // `init` introduces state.
                    Eq::Init { .. } => Effect::Det,
                    Eq::Automaton { .. } => Effect::Det,
                });
            }
            acc
        }
        // Activation conditions gate *state advancement*, which makes
        // them stateful even when every part is pure.
        Expr::Present { cond, then, els } => Effect::Det
            .max(effect_of(cond, s))
            .max(effect_of(then, s))
            .max(effect_of(els, s)),
        Expr::Reset { body, every } => Effect::Det.max(effect_of(body, s)).max(effect_of(every, s)),
        Expr::If { cond, then, els } => effect_of(cond, s)
            .max(effect_of(then, s))
            .max(effect_of(els, s)),
        Expr::Sample(_) | Expr::Observe(..) | Expr::Factor(_) | Expr::ValueOp(_) => Effect::Prob,
        // Derived forms (gone after desugaring, classified for safety).
        Expr::Arrow(a, b) | Expr::Fby(a, b) => {
            Effect::Det.max(effect_of(a, s)).max(effect_of(b, s))
        }
        Expr::Pre(inner) => Effect::Det.max(effect_of(inner, s)),
    }
}

/// Does the expression (transitively, through applications) allocate an
/// inference engine?
pub(crate) fn uses_engine(e: &Expr, s: Summaries<'_>) -> bool {
    let mut found = false;
    super::walk(e, &mut |x| match x {
        Expr::Infer { .. } => found = true,
        Expr::App(f, _) if s.engine(f) => found = true,
        _ => {}
    });
    found
}

/// Reads of an expression split by instantaneity: `(instant, last)`.
/// Conservative about shadowing — reads of names bound in nested
/// `where` blocks are reported too, which can only make invariance
/// *smaller*, never wrong.
pub(crate) fn split_reads(e: &Expr) -> (BTreeSet<String>, BTreeSet<String>) {
    let (mut now, mut lasts) = (BTreeSet::new(), BTreeSet::new());
    super::walk(e, &mut |x| match x {
        Expr::Var(name) => {
            now.insert(name.clone());
        }
        Expr::Last(name) => {
            lasts.insert(name.clone());
        }
        _ => {}
    });
    (now, lasts)
}

/// Analyzes a whole (scheduled, desugared) kernel program.
pub fn analyze_program(p: &Program) -> EffectReport {
    let mut report = EffectReport::default();
    for node in &p.nodes {
        let s = Summaries {
            effects: &report.node_effects,
            uses_engine: &report.uses_engine,
        };
        let node_effect = effect_of(&node.body, s);
        let engine = uses_engine(&node.body, s);

        // Facts about the top-level equations of the outermost where.
        let params: BTreeSet<String> = node.param.vars().iter().map(|v| v.to_string()).collect();
        let mut eqs_out: Vec<EqEffect> = Vec::new();
        if let Expr::Where { eqs, .. } = node.body.peel() {
            for eq in eqs {
                if let Eq::Def { name, expr } = eq {
                    eqs_out.push(EqEffect {
                        name: name.clone(),
                        effect: effect_of(expr, s),
                        pos: expr.span(),
                        invariant: false, // fixpoint below
                    });
                }
            }

            // Particle invariance: start from every engine-free Det-or-
            // below equation and shrink until reads close over
            // params ∪ invariants. `last` reads require the *read*
            // stream to be invariant too (its previous value must be
            // shared), so both read kinds constrain alike.
            let mut candidates: BTreeSet<String> = eqs_out
                .iter()
                .filter(|eq| eq.effect <= Effect::Det)
                .map(|eq| eq.name.clone())
                .collect();
            let reads: HashMap<String, BTreeSet<String>> = eqs
                .iter()
                .filter_map(|eq| match eq {
                    Eq::Def { name, expr } => {
                        let (now, lasts) = split_reads(expr);
                        Some((name.clone(), &now | &lasts))
                    }
                    _ => None,
                })
                .collect();
            let engine_free: BTreeSet<String> = eqs
                .iter()
                .filter_map(|eq| match eq {
                    Eq::Def { name, expr } if !uses_engine(expr, s) => Some(name.clone()),
                    _ => None,
                })
                .collect();
            candidates.retain(|name| engine_free.contains(name));
            loop {
                let keep: BTreeSet<String> = candidates
                    .iter()
                    .filter(|name| {
                        reads[*name]
                            .iter()
                            .all(|r| params.contains(r) || candidates.contains(r))
                    })
                    .cloned()
                    .collect();
                if keep.len() == candidates.len() {
                    break;
                }
                candidates = keep;
            }
            for eq in &mut eqs_out {
                eq.invariant = candidates.contains(&eq.name);
            }
            report.invariant.insert(node.name.clone(), candidates);
        } else {
            report.invariant.insert(node.name.clone(), BTreeSet::new());
        }

        report.eq_effects.insert(node.name.clone(), eqs_out);
        report.node_effects.insert(node.name.clone(), node_effect);
        if engine {
            report.uses_engine.insert(node.name.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::schedule::schedule_program;
    use crate::transform::desugar_program;

    fn analyzed(src: &str) -> EffectReport {
        let p = parse_program(src).unwrap();
        let kernel = schedule_program(&desugar_program(&p)).unwrap();
        analyze_program(&kernel)
    }

    #[test]
    fn lattice_order_and_join() {
        assert!(Effect::Pure < Effect::Det && Effect::Det < Effect::Prob);
        assert_eq!(Effect::Pure.max(Effect::Prob), Effect::Prob);
        assert_eq!(format!("{}", Effect::Det), "det");
    }

    #[test]
    fn counter_is_det_and_fully_invariant() {
        let r = analyzed("let node counter u = n where rec n = 0 -> pre n + 1");
        assert_eq!(r.node_effect("counter"), Effect::Det);
        // Every top-level equation (the counter and the desugared arrow
        // flag) depends only on constants and other invariant state.
        let eqs = &r.eq_effects["counter"];
        assert!(!eqs.is_empty());
        assert!(eqs.iter().all(|eq| eq.invariant), "{eqs:?}");
    }

    #[test]
    fn hmm_flags_are_invariant_but_samples_are_not() {
        let r = analyzed(
            "let node hmm y = x where
               rec x = sample (gaussian ((0. -> pre x), (100. -> 1.)))
               and () = observe (gaussian (x, 1.), y)",
        );
        assert_eq!(r.node_effect("hmm"), Effect::Prob);
        let eqs = &r.eq_effects["hmm"];
        let by_name = |n: &str| eqs.iter().find(|e| e.name == n).unwrap();
        assert_eq!(by_name("x").effect, Effect::Prob);
        assert!(!by_name("x").invariant);
        // Both desugared arrow flags read nothing but their own state.
        let flags: Vec<_> = eqs
            .iter()
            .filter(|e| e.name.starts_with("_first"))
            .collect();
        assert_eq!(flags.len(), 2, "{eqs:?}");
        for f in flags {
            // `_firstN = false` is a constant right-hand side.
            assert_eq!(f.effect, Effect::Pure);
            assert!(f.invariant, "{f:?}");
        }
        // The observe equation (parser-named `_unitN`) is effectful.
        assert!(eqs
            .iter()
            .any(|e| e.name.starts_with("_unit") && e.effect == Effect::Prob));
    }

    #[test]
    fn callee_summaries_propagate_prob() {
        let r = analyzed(
            "let node m y = sample (gaussian (y, 1.))
             let node caller y = x where rec x = m(y)",
        );
        assert_eq!(r.node_effect("m"), Effect::Prob);
        assert_eq!(r.node_effect("caller"), Effect::Prob);
        assert!(!r.eq_effects["caller"][0].invariant);
    }

    #[test]
    fn engine_users_are_never_invariant() {
        let r = analyzed(
            "let node m y = sample (gaussian (y, 1.))
             let node top y = e where rec e = mean_float(infer 4 m y)",
        );
        assert!(r.uses_engine.contains("top"));
        assert_eq!(r.node_effect("top"), Effect::Det);
        assert!(!r.eq_effects["top"][0].invariant, "engines are identity");
        assert!(r.invariant["top"].is_empty());
    }

    #[test]
    fn dependence_on_a_noninvariant_stream_spreads() {
        let r = analyzed(
            "let node f y = b where
               rec a = sample (gaussian (0., 1.))
               and b = a +. 1. -. 1.
               and c = y *. 2.",
        );
        let inv = &r.invariant["f"];
        assert!(!inv.contains("a") && !inv.contains("b"), "{inv:?}");
        assert!(inv.contains("c"), "{inv:?}");
    }
}
