//! Bounded-memory delayed-sampling analysis.
//!
//! Streaming delayed sampling (§5–6 of the paper) keeps inference in
//! constant memory only when every chain of linked marginal nodes is
//! eventually cut: a `pre`-carried random variable whose parent is never
//! consumed by an `observe` or `value` drags an ever-growing conjugate
//! chain from tick to tick (the classic-DS failure mode the paper's Fig. 14
//! measures). This module proves per-node chain boundedness by abstract
//! interpretation over the scheduled kernel program.
//!
//! Each stream variable is abstracted by a [`Shape`] in the lattice
//!
//! ```text
//! Const < Det < Sampled < Marginal(1) < Marginal(2) < … < Top
//! ```
//!
//! where `Marginal(k)` means "head of a chain of `k` linked marginal
//! nodes" and `Top` means the depth exceeded [`DEPTH_CAP`]. One abstract
//! *tick* evaluates the node's equations in scheduled order; `last x`
//! reads the shape carried from the previous tick; `observe`/`value`
//! *consume* the random variables their arguments read (realizing them to
//! `Sampled`, in the environment and in the carried state, following
//! copy aliases). The tick function iterates until the carried state
//! reaches a fixpoint (or [`MAX_TICKS`], a backstop the saturating depth
//! makes unreachable for genuinely growing chains).
//!
//! The verdict is [`Verdict::Bounded`] with the deepest chain ever built,
//! or [`Verdict::Unbounded`] with a witness cycle of stream variables that
//! feed each other's chains.

use crate::analysis::{collect_reads, each_eq};
use crate::ast::{Eq, Expr, NodeDecl, Program};
use crate::error::Pos;
use crate::kinds::Kind;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Chain depth at which the analysis saturates to `Top`.
const DEPTH_CAP: u32 = 8;

/// Backstop on abstract ticks per node (the carried state normally
/// reaches a fixpoint much sooner).
const MAX_TICKS: usize = 24;

/// Abstract delayed-sampling shape of one stream value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Shape {
    /// Compile-time constant.
    Const,
    /// Deterministic function of the node's inputs.
    Det,
    /// A realized (observed or forced) random variable.
    Sampled,
    /// Head of a chain of `k` linked marginal nodes.
    Marginal(u32),
    /// Chain depth exceeded [`DEPTH_CAP`].
    Top,
}

impl Shape {
    fn join(self, other: Shape) -> Shape {
        self.max(other)
    }

    fn is_random(self) -> bool {
        matches!(self, Shape::Marginal(_) | Shape::Top)
    }

    fn depth(self) -> u32 {
        match self {
            Shape::Marginal(k) => k,
            _ => 0,
        }
    }
}

/// Per-node result of the boundedness analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every delayed-sampling chain the node builds has at most `k`
    /// linked marginal nodes, at every tick.
    Bounded(u32),
    /// Some `pre`-carried random variable's chain never stabilizes: its
    /// parent is not consumed by `observe`/`value` on every path. The
    /// witness lists stream variables feeding each other's chains, with
    /// the first repeated at the end to close the cycle.
    Unbounded {
        /// The growing cycle, e.g. `["x", "x"]` for a self-feeding chain.
        witness: Vec<String>,
    },
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Bounded(k) => write!(f, "Bounded({k})"),
            Verdict::Unbounded { witness } => write!(f, "Unbounded({})", witness.join(" -> ")),
        }
    }
}

/// An observation whose distribution and observed value are both
/// compile-time constants (it conditions nothing; feeds the
/// `observe-constant` lint).
#[derive(Debug, Clone)]
pub struct ConstObserve {
    /// Node the observation occurs in.
    pub node: String,
    /// Span of the `observe`, when known.
    pub pos: Option<Pos>,
}

/// The result of analyzing a whole program.
#[derive(Debug, Clone, Default)]
pub struct BoundedReport {
    /// Verdict per node.
    pub verdicts: HashMap<String, Verdict>,
    /// Provably state-independent observations.
    pub const_observes: Vec<ConstObserve>,
}

/// Analyzes every node of a scheduled kernel program (nodes are analyzed
/// in declaration order, so applications fold in the callee's verdict).
pub fn analyze_program(kernel: &Program, kinds: &HashMap<String, Kind>) -> BoundedReport {
    let mut report = BoundedReport::default();
    for node in &kernel.nodes {
        let mut a = NodeAnalyzer {
            kinds,
            summaries: &report.verdicts,
            env: HashMap::new(),
            carried: HashMap::new(),
            aliases: HashMap::new(),
            max_depth: 0,
            saturated: false,
            const_observes: Vec::new(),
        };
        let verdict = a.run(node);
        for pos in a.const_observes {
            report.const_observes.push(ConstObserve {
                node: node.name.clone(),
                pos,
            });
        }
        report.verdicts.insert(node.name.clone(), verdict);
    }
    report
}

struct NodeAnalyzer<'a> {
    kinds: &'a HashMap<String, Kind>,
    summaries: &'a HashMap<String, Verdict>,
    /// Shape of each variable this tick.
    env: HashMap<String, Shape>,
    /// Shape carried across the tick boundary by `last`.
    carried: HashMap<String, Shape>,
    /// Copy equations `m = x`, used to realize aliases together.
    aliases: HashMap<String, String>,
    max_depth: u32,
    saturated: bool,
    const_observes: Vec<Option<Pos>>,
}

impl NodeAnalyzer<'_> {
    fn run(&mut self, node: &NodeDecl) -> Verdict {
        each_eq(&node.body, &mut |eq| {
            if let Eq::Init { name, .. } = eq {
                self.carried.insert(name.clone(), Shape::Const);
            }
        });
        for _ in 0..MAX_TICKS {
            self.env.clear();
            self.aliases.clear();
            for v in node.param.vars() {
                self.env.insert(v.to_string(), Shape::Det);
            }
            let _ = self.eval(&node.body, None);
            let mut next = self.carried.clone();
            for (name, shape) in &mut next {
                if let Some(s) = self.env.get(name) {
                    *shape = *s;
                }
            }
            if next == self.carried {
                break;
            }
            self.carried = next;
        }
        if self.saturated {
            Verdict::Unbounded {
                witness: self.witness(node),
            }
        } else {
            Verdict::Bounded(self.max_depth)
        }
    }

    fn eval(&mut self, e: &Expr, pos: Option<Pos>) -> Shape {
        match e {
            Expr::At(inner, p) => self.eval(inner, Some(*p)),
            Expr::Const(_) => Shape::Const,
            Expr::Var(x) => self.env.get(x.as_str()).copied().unwrap_or(Shape::Det),
            Expr::Last(x) => self
                .carried
                .get(x.as_str())
                .copied()
                .unwrap_or(Shape::Const),
            Expr::Pair(a, b) => {
                let sa = self.eval(a, pos);
                let sb = self.eval(b, pos);
                sa.join(sb)
            }
            Expr::Op(_, args) => args.iter().fold(Shape::Const, |acc, a| {
                let s = self.eval(a, pos);
                acc.join(s)
            }),
            Expr::App(f, arg) => {
                let sa = self.eval(arg, pos);
                if self.kinds.get(f.as_str()) == Some(&Kind::P) {
                    self.apply_summary(f, sa)
                } else {
                    Shape::Det.join(sa)
                }
            }
            Expr::Where { body, eqs } => {
                for eq in eqs {
                    if let Eq::Def { name, expr } = eq {
                        let s = self.eval(expr, pos);
                        if let Expr::Var(y) = expr.peel() {
                            self.aliases.insert(name.clone(), y.clone());
                        }
                        self.env.insert(name.clone(), s);
                    }
                }
                self.eval(body, pos)
            }
            Expr::If { cond, then, els } => {
                // Strict: both branches run, so their consumptions persist.
                let _ = self.eval(cond, pos);
                let st = self.eval(then, pos);
                let se = self.eval(els, pos);
                st.join(se)
            }
            Expr::Present { cond, then, els } => {
                // Lazy: a branch only realizes variables when taken, so
                // post-branch states are joined (join discards a
                // consumption unless both branches perform it).
                let _ = self.eval(cond, pos);
                let saved_env = self.env.clone();
                let saved_carried = self.carried.clone();
                let st = self.eval(then, pos);
                let env_then = std::mem::replace(&mut self.env, saved_env);
                let carried_then = std::mem::replace(&mut self.carried, saved_carried);
                let se = self.eval(els, pos);
                for (k, v) in env_then {
                    let cur = self.env.entry(k).or_insert(v);
                    *cur = cur.join(v);
                }
                for (k, v) in carried_then {
                    let cur = self.carried.entry(k).or_insert(v);
                    *cur = cur.join(v);
                }
                st.join(se)
            }
            Expr::Reset { body, every } => {
                // Ignoring the reset (which only shrinks chains) is a
                // sound upper bound.
                let _ = self.eval(every, pos);
                self.eval(body, pos)
            }
            Expr::Sample(d) => {
                let sd = self.eval(d, pos);
                self.sample_result(sd)
            }
            Expr::Observe(d, v) => {
                let sd = self.eval(d, pos);
                let sv = self.eval(v, pos);
                if sd == Shape::Const && sv == Shape::Const {
                    self.const_observes.push(pos);
                }
                self.consume(d);
                Shape::Const
            }
            Expr::Factor(w) => {
                let _ = self.eval(w, pos);
                Shape::Const
            }
            Expr::ValueOp(x) => {
                let _ = self.eval(x, pos);
                self.consume(x);
                Shape::Det
            }
            Expr::Infer { arg, .. } => {
                let _ = self.eval(arg, pos);
                Shape::Det
            }
            Expr::Arrow(a, b) | Expr::Fby(a, b) => {
                let sa = self.eval(a, pos);
                let sb = self.eval(b, pos);
                sa.join(sb)
            }
            Expr::Pre(x) => self.eval(x, pos),
        }
    }

    /// `sample` from a distribution whose parameters have shape `parent`:
    /// extends the parent's chain by one node.
    fn sample_result(&mut self, parent: Shape) -> Shape {
        let s = match parent {
            Shape::Top => {
                self.saturated = true;
                Shape::Top
            }
            Shape::Marginal(k) if k >= DEPTH_CAP => {
                self.saturated = true;
                Shape::Top
            }
            Shape::Marginal(k) => Shape::Marginal(k + 1),
            _ => Shape::Marginal(1),
        };
        self.max_depth = self.max_depth.max(s.depth());
        s
    }

    /// Applying a probabilistic node folds the callee's verdict: its
    /// internal chains contribute at most its bound on top of the
    /// argument's chain.
    fn apply_summary(&mut self, f: &str, arg: Shape) -> Shape {
        let base = match self.summaries.get(f) {
            Some(Verdict::Bounded(k)) => (*k).max(1),
            Some(Verdict::Unbounded { .. }) | None => {
                self.saturated = true;
                return Shape::Top;
            }
        };
        let s = match arg {
            Shape::Top => {
                self.saturated = true;
                Shape::Top
            }
            Shape::Marginal(j) if j + base > DEPTH_CAP => {
                self.saturated = true;
                Shape::Top
            }
            Shape::Marginal(j) => Shape::Marginal(j + base),
            _ => Shape::Marginal(base),
        };
        self.max_depth = self.max_depth.max(s.depth());
        s
    }

    /// Realizes every random variable read by `e` (and its copy aliases):
    /// `observe`/`value` cut the chain at the consumed node.
    fn consume(&mut self, e: &Expr) {
        let mut reads = Vec::new();
        collect_reads(e, &mut reads);
        let mut names: HashSet<String> = HashSet::new();
        for name in reads {
            names.insert(self.resolve_alias(&name));
            names.insert(name);
        }
        let also: Vec<String> = self
            .aliases
            .keys()
            .filter(|a| names.contains(&self.resolve_alias(a)))
            .cloned()
            .collect();
        names.extend(also);
        for name in names {
            if let Some(s) = self.env.get_mut(&name) {
                if s.is_random() {
                    *s = Shape::Sampled;
                }
            }
            if let Some(s) = self.carried.get_mut(&name) {
                if s.is_random() {
                    *s = Shape::Sampled;
                }
            }
        }
    }

    fn resolve_alias(&self, name: &str) -> String {
        let mut cur = name;
        let mut hops = 0;
        while let Some(next) = self.aliases.get(cur) {
            cur = next;
            hops += 1;
            if hops > 32 {
                break;
            }
        }
        cur.to_string()
    }

    /// A cycle of saturated stream variables feeding each other's chains:
    /// an edge `x -> y` means the definition of `x` reads `y` (directly or
    /// through `last` / a copy alias) and both saturated.
    fn witness(&self, node: &NodeDecl) -> Vec<String> {
        let tops: BTreeSet<String> = self
            .env
            .iter()
            .chain(self.carried.iter())
            .filter(|(_, s)| matches!(s, Shape::Top))
            .map(|(k, _)| self.resolve_alias(k))
            .collect();
        let mut edges: HashMap<String, BTreeSet<String>> = HashMap::new();
        each_eq(&node.body, &mut |eq| {
            if let Eq::Def { name, expr } = eq {
                let x = self.resolve_alias(name);
                if !tops.contains(&x) {
                    return;
                }
                let mut reads = Vec::new();
                collect_reads(expr, &mut reads);
                for y in reads {
                    let y = self.resolve_alias(&y);
                    if tops.contains(&y) {
                        edges.entry(x.clone()).or_default().insert(y);
                    }
                }
            }
        });
        for start in &tops {
            if let Some(cycle) = find_cycle(&edges, start) {
                return cycle;
            }
        }
        let v = tops
            .iter()
            .next()
            .cloned()
            .unwrap_or_else(|| node.name.clone());
        vec![v.clone(), v]
    }
}

/// A path `start -> … -> start` in the read graph, if one exists.
fn find_cycle(edges: &HashMap<String, BTreeSet<String>>, start: &str) -> Option<Vec<String>> {
    let mut stack = vec![(start.to_string(), vec![start.to_string()])];
    let mut visited: HashSet<String> = HashSet::new();
    while let Some((cur, path)) = stack.pop() {
        for next in edges.get(&cur).into_iter().flatten() {
            if next == start {
                let mut p = path.clone();
                p.push(start.to_string());
                return Some(p);
            }
            if visited.insert(next.clone()) {
                let mut p = path.clone();
                p.push(next.clone());
                stack.push((next.clone(), p));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds;
    use crate::parser::parse_program;
    use crate::schedule::schedule_program;
    use crate::transform::desugar_program;

    fn analyze(src: &str) -> BoundedReport {
        let p = parse_program(src).unwrap();
        let p = crate::automata::expand_program(&p).unwrap();
        let kinds = kinds::check_program(&p).unwrap();
        let kernel = desugar_program(&p);
        let kernel = schedule_program(&kernel).unwrap();
        analyze_program(&kernel, &kinds)
    }

    #[test]
    fn deterministic_node_is_bounded_zero() {
        let r = analyze("let node counter x = c where rec c = 0. -> pre c + x");
        assert_eq!(r.verdicts["counter"], Verdict::Bounded(0));
    }

    #[test]
    fn the_observed_hmm_is_bounded_one() {
        let r = analyze(
            r#"
            let node hmm y = x where
              rec x = sample (gaussian (0. -> pre x, 1.))
              and () = observe (gaussian (x, 1.), y)
            let node main y = infer 100 hmm y
            "#,
        );
        assert_eq!(r.verdicts["hmm"], Verdict::Bounded(1));
        assert_eq!(r.verdicts["main"], Verdict::Bounded(0));
    }

    #[test]
    fn unobserved_pre_chain_is_unbounded_with_a_witness() {
        let r = analyze(
            r#"
            let node drift () = x where
              rec x = sample (gaussian (0. -> pre x, 1.))
            "#,
        );
        match &r.verdicts["drift"] {
            Verdict::Unbounded { witness } => {
                assert!(witness.contains(&"x".to_string()), "witness: {witness:?}");
                assert!(witness.len() >= 2);
            }
            other => panic!("expected unbounded, got {other}"),
        }
    }

    #[test]
    fn value_consumption_cuts_the_chain() {
        let r = analyze(
            r#"
            let node forced () = v where
              rec x = sample (gaussian (0. -> pre x, 1.))
              and v = value (x)
            "#,
        );
        assert!(
            matches!(r.verdicts["forced"], Verdict::Bounded(_)),
            "got {}",
            r.verdicts["forced"]
        );
    }

    #[test]
    fn applying_an_unbounded_node_is_unbounded() {
        let r = analyze(
            r#"
            let node drift () = x where
              rec x = sample (gaussian (0. -> pre x, 1.))
            let node wrapper () = drift () + 0.
            "#,
        );
        assert!(matches!(r.verdicts["wrapper"], Verdict::Unbounded { .. }));
    }

    #[test]
    fn constant_observation_is_reported() {
        let r = analyze("let node silly y = observe (gaussian (0., 1.), 2.)");
        assert_eq!(r.const_observes.len(), 1);
        assert_eq!(r.const_observes[0].node, "silly");
        // A state-dependent observation is not.
        let r = analyze(
            r#"
            let node fine y = x where
              rec x = sample (gaussian (0. -> pre x, 1.))
              and () = observe (gaussian (x, 1.), y)
            "#,
        );
        assert!(r.const_observes.is_empty());
    }

    #[test]
    fn verdict_display_is_stable() {
        assert_eq!(Verdict::Bounded(2).to_string(), "Bounded(2)");
        assert_eq!(
            Verdict::Unbounded {
                witness: vec!["x".into(), "x".into()]
            }
            .to_string(),
            "Unbounded(x -> x)"
        );
    }
}
