//! Static analyses that run after the core pipeline checks succeed:
//! delayed-sampling boundedness ([`bounded`]) and style lints ([`lints`]).
//!
//! Unlike the pipeline passes these are advisory — they never reject a
//! program, they produce [`crate::diag::Diagnostic`]s (warnings and lints)
//! and per-node verdicts that drivers can use to pick an inference method.

pub mod bounded;
pub mod effects;
pub mod lints;

use crate::ast::{Eq, Expr};
use crate::error::Pos;

/// Pre-order visitor over every expression in a tree, including equation
/// right-hand sides and automaton state machinery.
pub(crate) fn walk<'e>(e: &'e Expr, f: &mut impl FnMut(&'e Expr)) {
    f(e);
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Last(_) => {}
        Expr::At(inner, _)
        | Expr::Sample(inner)
        | Expr::Factor(inner)
        | Expr::ValueOp(inner)
        | Expr::Pre(inner) => walk(inner, f),
        Expr::Pair(a, b) | Expr::Observe(a, b) | Expr::Arrow(a, b) | Expr::Fby(a, b) => {
            walk(a, f);
            walk(b, f);
        }
        Expr::Op(_, args) => {
            for a in args {
                walk(a, f);
            }
        }
        Expr::App(_, arg) | Expr::Infer { arg, .. } => walk(arg, f),
        Expr::Where { body, eqs } => {
            for eq in eqs {
                walk_eq(eq, f);
            }
            walk(body, f);
        }
        Expr::Present { cond, then, els } | Expr::If { cond, then, els } => {
            walk(cond, f);
            walk(then, f);
            walk(els, f);
        }
        Expr::Reset { body, every } => {
            walk(body, f);
            walk(every, f);
        }
    }
}

/// Visits every expression reachable from an equation.
pub(crate) fn walk_eq<'e>(eq: &'e Eq, f: &mut impl FnMut(&'e Expr)) {
    match eq {
        Eq::Def { expr, .. } => walk(expr, f),
        Eq::Init { .. } => {}
        Eq::Automaton { states } => {
            for st in states {
                for eq in &st.eqs {
                    walk_eq(eq, f);
                }
                for (cond, _) in &st.transitions {
                    walk(cond, f);
                }
            }
        }
    }
}

/// Visits every equation in an expression tree (outermost `where` blocks
/// first, then nested ones).
pub(crate) fn each_eq<'e>(e: &'e Expr, f: &mut impl FnMut(&'e Eq)) {
    walk(e, &mut |x| {
        if let Expr::Where { eqs, .. } = x {
            for eq in eqs {
                f(eq);
            }
        }
    });
}

/// Like [`walk`], threading the nearest enclosing span annotation.
pub(crate) fn walk_at<'e>(
    e: &'e Expr,
    pos: Option<Pos>,
    f: &mut impl FnMut(&'e Expr, Option<Pos>),
) {
    f(e, pos);
    match e {
        Expr::At(inner, p) => walk_at(inner, Some(*p), f),
        Expr::Const(_) | Expr::Var(_) | Expr::Last(_) => {}
        Expr::Sample(inner) | Expr::Factor(inner) | Expr::ValueOp(inner) | Expr::Pre(inner) => {
            walk_at(inner, pos, f);
        }
        Expr::Pair(a, b) | Expr::Observe(a, b) | Expr::Arrow(a, b) | Expr::Fby(a, b) => {
            walk_at(a, pos, f);
            walk_at(b, pos, f);
        }
        Expr::Op(_, args) => {
            for a in args {
                walk_at(a, pos, f);
            }
        }
        Expr::App(_, arg) | Expr::Infer { arg, .. } => walk_at(arg, pos, f),
        Expr::Where { body, eqs } => {
            for eq in eqs {
                if let Eq::Def { expr, .. } = eq {
                    walk_at(expr, pos, f);
                }
            }
            walk_at(body, pos, f);
        }
        Expr::Present { cond, then, els } | Expr::If { cond, then, els } => {
            walk_at(cond, pos, f);
            walk_at(then, pos, f);
            walk_at(els, pos, f);
        }
        Expr::Reset { body, every } => {
            walk_at(body, pos, f);
            walk_at(every, pos, f);
        }
    }
}

/// All variable reads (`x` and `last x`) in an expression, in visit order,
/// possibly with duplicates.
pub(crate) fn collect_reads(e: &Expr, out: &mut Vec<String>) {
    walk(e, &mut |x| match x {
        Expr::Var(name) | Expr::Last(name) => out.push(name.clone()),
        _ => {}
    });
}
