//! Source-to-source desugaring into the kernel of Fig. 6.
//!
//! The derived operators are eliminated as §3.1 describes:
//!
//! * `e1 fby e2` ≡ `e1 -> pre e2`;
//! * `e1 -> e2` introduces a first-instant flag in the enclosing equation
//!   set: `init f = true and f = false`, and rewrites to
//!   `if last f then e1 else e2`;
//! * `pre x` of a variable `x` defined by an enclosing equation set
//!   becomes `last x` (adding `init x = nil` when `x` has no `init`) —
//!   this is the paper's own §3.1 rewriting of `x = 0 -> pre x + 1`, and
//!   it is what makes recursion through `pre` causally schedulable;
//! * `pre e` of a general expression becomes a unit delay through a fresh
//!   state variable: `init m = nil and m = e`, rewritten to `last m`.
//!
//! Equations introduced by sugar are **hoisted** to the nearest enclosing
//! equation set, but never across a *lazy* boundary (a `present` branch or
//! a `reset` body): state inside a `present` branch must only advance when
//! the branch is active, and state inside a `reset` must be re-initialized
//! by the reset — so those positions become equation sets of their own when
//! needed.

use crate::ast::{Const, Eq, Expr, NodeDecl, Program};
use std::collections::HashSet;

pub mod lower;
pub mod opt;

/// Desugars every derived construct in a program.
pub fn desugar_program(p: &Program) -> Program {
    let mut ctx = Ctx::default();
    Program {
        nodes: p
            .nodes
            .iter()
            .map(|n| NodeDecl {
                name: n.name.clone(),
                param: n.param.clone(),
                body: ctx.desugar_scope(&n.body),
            })
            .collect(),
    }
}

/// Desugars a single expression (fresh names are unique within the call).
pub fn desugar_expr(e: &Expr) -> Expr {
    Ctx::default().desugar_scope(e)
}

#[derive(Default)]
struct Ctx {
    fresh: u32,
    /// Enclosing `where` scopes, innermost last: the names each defines,
    /// and the defined variables that need an `init x = nil` added.
    scopes: Vec<Scope>,
}

#[derive(Default)]
struct Scope {
    names: HashSet<String>,
    has_init: HashSet<String>,
    nil_inits: HashSet<String>,
}

impl Ctx {
    fn fresh(&mut self, hint: &str) -> String {
        self.fresh += 1;
        format!("_{hint}{}", self.fresh)
    }

    /// Desugars `e` as its own hoisting scope: equations introduced by
    /// sugar directly inside `e` wrap it in a fresh `where rec`.
    fn desugar_scope(&mut self, e: &Expr) -> Expr {
        let mut hoisted = Vec::new();
        let body = self.desugar(e, &mut hoisted);
        if hoisted.is_empty() {
            body
        } else if let Expr::Where { body, mut eqs } = body {
            eqs.extend(hoisted);
            Expr::Where { body, eqs }
        } else {
            Expr::Where {
                body: Box::new(body),
                eqs: hoisted,
            }
        }
    }

    fn desugar(&mut self, e: &Expr, hoist: &mut Vec<Eq>) -> Expr {
        match e {
            Expr::At(inner, p) => Expr::at(self.desugar(inner, hoist), *p),
            Expr::Const(_) | Expr::Var(_) | Expr::Last(_) => e.clone(),
            Expr::Pair(a, b) => Expr::pair(self.desugar(a, hoist), self.desugar(b, hoist)),
            Expr::Op(op, args) => {
                Expr::Op(*op, args.iter().map(|a| self.desugar(a, hoist)).collect())
            }
            Expr::App(f, arg) => Expr::App(f.clone(), Box::new(self.desugar(arg, hoist))),
            Expr::Where { body, eqs } => {
                let mut scope = Scope::default();
                for eq in eqs {
                    if matches!(eq, Eq::Automaton { .. }) {
                        continue; // expanded before this pass; kept inert here
                    }
                    scope.names.insert(eq.name().to_string());
                    if let Eq::Init { name, .. } = eq {
                        scope.has_init.insert(name.clone());
                    }
                }
                self.scopes.push(scope);
                let mut local = Vec::new();
                let mut new_eqs = Vec::new();
                for eq in eqs {
                    match eq {
                        Eq::Def { name, expr } => new_eqs.push(Eq::Def {
                            name: name.clone(),
                            expr: self.desugar(expr, &mut local),
                        }),
                        init => new_eqs.push(init.clone()),
                    }
                }
                let body = self.desugar(body, &mut local);
                let scope = self.scopes.pop().expect("scope pushed above");
                for x in scope.nil_inits {
                    if !scope.has_init.contains(&x) {
                        new_eqs.push(Eq::Init {
                            name: x,
                            value: Const::Nil,
                        });
                    }
                }
                new_eqs.extend(local);
                Expr::Where {
                    body: Box::new(body),
                    eqs: new_eqs,
                }
            }
            Expr::Present { cond, then, els } => Expr::Present {
                cond: Box::new(self.desugar(cond, hoist)),
                // Lazy boundary: branch state stays inside the branch.
                then: Box::new(self.desugar_scope(then)),
                els: Box::new(self.desugar_scope(els)),
            },
            Expr::Reset { body, every } => Expr::Reset {
                // Lazy boundary: the reset must re-initialize the body's
                // state.
                body: Box::new(self.desugar_scope(body)),
                every: Box::new(self.desugar(every, hoist)),
            },
            Expr::If { cond, then, els } => Expr::If {
                cond: Box::new(self.desugar(cond, hoist)),
                then: Box::new(self.desugar(then, hoist)),
                els: Box::new(self.desugar(els, hoist)),
            },
            Expr::Sample(d) => Expr::Sample(Box::new(self.desugar(d, hoist))),
            Expr::Observe(d, v) => Expr::Observe(
                Box::new(self.desugar(d, hoist)),
                Box::new(self.desugar(v, hoist)),
            ),
            Expr::Factor(w) => Expr::Factor(Box::new(self.desugar(w, hoist))),
            Expr::ValueOp(x) => Expr::ValueOp(Box::new(self.desugar(x, hoist))),
            Expr::Infer {
                particles,
                node,
                arg,
            } => Expr::Infer {
                particles: *particles,
                node: node.clone(),
                arg: Box::new(self.desugar(arg, hoist)),
            },
            Expr::Fby(a, b) => {
                // e1 fby e2 ≡ e1 -> pre e2
                let rewritten = Expr::Arrow(a.clone(), Box::new(Expr::Pre(b.clone())));
                self.desugar(&rewritten, hoist)
            }
            Expr::Arrow(a, b) => {
                let a = self.desugar(a, hoist);
                let b = self.desugar(b, hoist);
                let f = self.fresh("first");
                hoist.push(Eq::Init {
                    name: f.clone(),
                    value: Const::Bool(true),
                });
                hoist.push(Eq::Def {
                    name: f.clone(),
                    expr: Expr::Const(Const::Bool(false)),
                });
                Expr::If {
                    cond: Box::new(Expr::Last(f)),
                    then: Box::new(a),
                    els: Box::new(b),
                }
            }
            Expr::Pre(inner) => {
                // `pre x` of an equation-defined variable: reuse the
                // variable's own state via `last x`. (Peel span wrappers:
                // `pre x` must hit this case even when `x` is annotated.)
                if let Expr::Var(x) = inner.peel() {
                    if let Some(scope) = self
                        .scopes
                        .iter_mut()
                        .rev()
                        .find(|s| s.names.contains(x.as_str()))
                    {
                        scope.nil_inits.insert(x.clone());
                        return Expr::Last(x.clone());
                    }
                }
                let inner = self.desugar(inner, hoist);
                let m = self.fresh("pre");
                hoist.push(Eq::Init {
                    name: m.clone(),
                    value: Const::Nil,
                });
                hoist.push(Eq::Def {
                    name: m.clone(),
                    expr: inner,
                });
                Expr::Last(m)
            }
        }
    }
}

/// Whether an expression is in the kernel (contains no derived forms).
pub fn is_kernel(e: &Expr) -> bool {
    match e {
        Expr::At(inner, _) => is_kernel(inner),
        Expr::Arrow(_, _) | Expr::Pre(_) | Expr::Fby(_, _) => false,
        Expr::Const(_) | Expr::Var(_) | Expr::Last(_) => true,
        Expr::Pair(a, b) => is_kernel(a) && is_kernel(b),
        Expr::Op(_, args) => args.iter().all(is_kernel),
        Expr::App(_, arg) => is_kernel(arg),
        Expr::Where { body, eqs } => {
            is_kernel(body)
                && eqs.iter().all(|eq| match eq {
                    Eq::Def { expr, .. } => is_kernel(expr),
                    Eq::Init { .. } => true,
                    Eq::Automaton { .. } => false,
                })
        }
        Expr::Present { cond, then, els } | Expr::If { cond, then, els } => {
            is_kernel(cond) && is_kernel(then) && is_kernel(els)
        }
        Expr::Reset { body, every } => is_kernel(body) && is_kernel(every),
        Expr::Sample(d) => is_kernel(d),
        Expr::Observe(d, v) => is_kernel(d) && is_kernel(v),
        Expr::Factor(w) => is_kernel(w),
        Expr::ValueOp(x) => is_kernel(x),
        Expr::Infer { arg, .. } => is_kernel(arg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::schedule::schedule_expr;

    #[test]
    fn arrow_hoists_a_first_flag() {
        let e = parse_expr("0. -> x").unwrap();
        let d = desugar_expr(&e);
        assert!(is_kernel(&d));
        match &d {
            Expr::Where { body, eqs } => {
                assert!(matches!(&**body, Expr::If { .. }));
                assert_eq!(eqs.len(), 2);
                assert!(matches!(
                    &eqs[0],
                    Eq::Init {
                        value: Const::Bool(true),
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pre_of_free_variable_hoists_a_state() {
        let e = parse_expr("pre x").unwrap();
        let d = desugar_expr(&e);
        assert!(is_kernel(&d));
        match &d {
            Expr::Where { body, eqs } => {
                assert!(matches!(&**body, Expr::Last(_)));
                assert!(matches!(
                    &eqs[0],
                    Eq::Init {
                        value: Const::Nil,
                        ..
                    }
                ));
                assert!(matches!(&eqs[1], Eq::Def { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pre_of_defined_variable_becomes_last() {
        // x = 0 -> pre x + 1 (§3.1): pre x reuses x's own state.
        let e = parse_expr("x where rec x = 0 -> pre x + 1").unwrap();
        let d = desugar_expr(&e);
        assert!(is_kernel(&d));
        match &d {
            Expr::Where { eqs, .. } => {
                // x's definition plus the hoisted arrow flag plus
                // `init x = nil`.
                assert!(eqs
                    .iter()
                    .any(|q| matches!(q, Eq::Init { name, value: Const::Nil } if name == "x")));
                // No fresh `_pre` state was needed.
                assert!(!eqs.iter().any(|q| q.name().starts_with("_pre")));
            }
            other => panic!("{other:?}"),
        }
        assert!(schedule_expr(&d).is_ok());
    }

    #[test]
    fn pre_of_defined_variable_with_user_init_adds_nothing() {
        let e = parse_expr("x where rec init x = 5. and x = pre x").unwrap();
        let d = desugar_expr(&e);
        match &d {
            Expr::Where { eqs, .. } => {
                let nils = eqs
                    .iter()
                    .filter(|q| {
                        matches!(
                            q,
                            Eq::Init {
                                value: Const::Nil,
                                ..
                            }
                        )
                    })
                    .count();
                assert_eq!(nils, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fby_goes_through_arrow_and_pre() {
        let e = parse_expr("y where rec y = 0. fby y + 1.").unwrap();
        let d = desugar_expr(&e);
        assert!(is_kernel(&d));
        assert!(schedule_expr(&d).is_ok());
    }

    #[test]
    fn recursion_through_pre_inside_reset_is_causal() {
        let e = parse_expr("n where rec n = reset (0. -> pre n + 1.) every c").unwrap();
        let d = desugar_expr(&e);
        assert!(is_kernel(&d));
        assert!(schedule_expr(&d).is_ok());
    }

    #[test]
    fn present_branches_are_their_own_scopes() {
        let e = parse_expr("present c -> (0. -> pre c) else true").unwrap();
        let d = desugar_expr(&e);
        assert!(is_kernel(&d));
        match &d {
            Expr::Present { then, .. } => {
                assert!(matches!(&**then, Expr::Where { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_arrows_get_distinct_flags() {
        let e = parse_expr("(0. -> a) + (1. -> b)").unwrap();
        let d = desugar_expr(&e);
        assert!(is_kernel(&d));
        match &d {
            Expr::Where { eqs, .. } => {
                let inits: Vec<&str> = eqs
                    .iter()
                    .filter(|q| matches!(q, Eq::Init { .. }))
                    .map(|q| q.name())
                    .collect();
                assert_eq!(inits.len(), 2);
                assert_ne!(inits[0], inits[1]);
            }
            other => panic!("{other:?}"),
        }
    }
}
