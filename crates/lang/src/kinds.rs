//! Kind system: deterministic (`D`) vs probabilistic (`P`) expressions,
//! exactly the rules of Fig. 7.
//!
//! `D <= P` by the sub-typing rule, so the kind of a compound expression is
//! the join of its parts — except where a rule's premise *requires* `D`:
//! the arguments of `sample`, `observe`, `factor`, `value`, node
//! application, and `infer`. Probabilistic expressions may only occur
//! under an `infer`, which itself is deterministic.

use crate::ast::{Eq, Expr, NodeDecl, Program};
use crate::error::{LangError, Stage};
use std::collections::HashMap;

/// Expression kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// Deterministic.
    D,
    /// Probabilistic.
    P,
}

impl std::fmt::Display for Kind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Kind::D => write!(f, "D"),
            Kind::P => write!(f, "P"),
        }
    }
}

/// Checks the whole program, returning each node's kind (the environment
/// `G` of Fig. 7). Nodes must be declared before use.
///
/// # Errors
///
/// Kind errors per Fig. 7: probabilistic expressions in
/// deterministic-only positions, unknown nodes, probabilistic `main`-style
/// nodes used without `infer` are reported at their use.
pub fn check_program(p: &Program) -> Result<HashMap<String, Kind>, LangError> {
    let mut env: HashMap<String, Kind> = HashMap::new();
    for node in &p.nodes {
        let k = check_node(node, &env)?;
        env.insert(node.name.clone(), k);
    }
    Ok(env)
}

fn check_node(node: &NodeDecl, env: &HashMap<String, Kind>) -> Result<Kind, LangError> {
    kind_of(&node.body, env)
}

/// Infers the kind of an expression under a node-kind environment.
///
/// # Errors
///
/// See [`check_program`].
pub fn kind_of(e: &Expr, env: &HashMap<String, Kind>) -> Result<Kind, LangError> {
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Last(_) => Ok(Kind::D),
        Expr::Pair(a, b) => Ok(kind_of(a, env)?.max(kind_of(b, env)?)),
        Expr::Op(_, args) => {
            let mut k = Kind::D;
            for a in args {
                k = k.max(kind_of(a, env)?);
            }
            Ok(k)
        }
        Expr::App(f, arg) => {
            require_d(arg, env, "the argument of a node application")?;
            env.get(f.as_str()).copied().ok_or_else(|| {
                LangError::new(
                    Stage::Kind,
                    format!("unknown node `{f}` (nodes must be declared before use)"),
                )
            })
        }
        Expr::Where { body, eqs } => {
            let mut k = kind_of(body, env)?;
            for eq in eqs {
                match eq {
                    Eq::Def { expr, .. } => k = k.max(kind_of(expr, env)?),
                    Eq::Init { .. } => {}
                    Eq::Automaton { .. } => {
                        return Err(LangError::new(
                            Stage::Kind,
                            "automaton must be expanded before kind checking (run crate::automata::expand_program)",
                        ))
                    }
                }
            }
            Ok(k)
        }
        Expr::Present { cond, then, els } | Expr::If { cond, then, els } => Ok(kind_of(cond, env)?
            .max(kind_of(then, env)?)
            .max(kind_of(els, env)?)),
        Expr::Reset { body, every } => Ok(kind_of(body, env)?.max(kind_of(every, env)?)),
        Expr::Sample(d) => {
            require_d(d, env, "the argument of `sample`")?;
            Ok(Kind::P)
        }
        Expr::Observe(d, v) => {
            require_d(d, env, "the distribution argument of `observe`")?;
            require_d(v, env, "the observed value of `observe`")?;
            Ok(Kind::P)
        }
        Expr::Factor(w) => {
            require_d(w, env, "the argument of `factor`")?;
            Ok(Kind::P)
        }
        Expr::ValueOp(x) => {
            require_d(x, env, "the argument of `value`")?;
            Ok(Kind::P)
        }
        Expr::Infer { node, arg, .. } => {
            require_d(arg, env, "the input stream of `infer`")?;
            if !env.contains_key(node.as_str()) {
                return Err(LangError::new(
                    Stage::Kind,
                    format!("unknown node `{node}` in `infer`"),
                ));
            }
            Ok(Kind::D)
        }
        Expr::Arrow(a, b) | Expr::Fby(a, b) => Ok(kind_of(a, env)?.max(kind_of(b, env)?)),
        Expr::Pre(x) => kind_of(x, env),
    }
}

fn require_d(e: &Expr, env: &HashMap<String, Kind>, what: &str) -> Result<(), LangError> {
    match kind_of(e, env)? {
        Kind::D => Ok(()),
        Kind::P => Err(LangError::new(
            Stage::Kind,
            format!("{what} must be deterministic; bind intermediate probabilistic values with equations"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn kinds(src: &str) -> Result<HashMap<String, Kind>, LangError> {
        check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn deterministic_node_is_d() {
        let k = kinds("let node f x = x + 1.").unwrap();
        assert_eq!(k["f"], Kind::D);
    }

    #[test]
    fn sampling_node_is_p() {
        let k = kinds("let node f x = sample(gaussian(x, 1.))").unwrap();
        assert_eq!(k["f"], Kind::P);
    }

    #[test]
    fn infer_makes_it_deterministic_again() {
        let src = r#"
            let node m y = x where
              rec x = sample (gaussian (0. -> pre x, 1.))
              and () = observe (gaussian (x, 1.), y)
            let node main y = infer 100 m y
        "#;
        let k = kinds(src).unwrap();
        assert_eq!(k["m"], Kind::P);
        assert_eq!(k["main"], Kind::D);
    }

    #[test]
    fn sample_of_sample_is_rejected() {
        // Fig. 7: sample's argument must be deterministic.
        let err =
            kinds("let node f x = sample(gaussian(sample(gaussian(x, 1.)), 1.))").unwrap_err();
        assert_eq!(err.stage, Stage::Kind);
        assert!(err.message.contains("sample"));
    }

    #[test]
    fn probabilistic_observed_value_is_rejected() {
        let err =
            kinds("let node f x = observe(gaussian(0., 1.), sample(gaussian(x, 1.)))").unwrap_err();
        assert_eq!(err.stage, Stage::Kind);
    }

    #[test]
    fn applying_probabilistic_node_keeps_p() {
        let src = r#"
            let node m x = sample(gaussian(x, 1.))
            let node g x = m(x) + 1.
        "#;
        let k = kinds(src).unwrap();
        assert_eq!(k["g"], Kind::P);
    }

    #[test]
    fn unknown_node_is_an_error() {
        let err = kinds("let node f x = g(x)").unwrap_err();
        assert!(err.message.contains("unknown node"));
        let err = kinds("let node f x = infer 10 g x").unwrap_err();
        assert!(err.message.contains("unknown node"));
    }

    #[test]
    fn probabilistic_argument_to_application_rejected() {
        let src = r#"
            let node m x = sample(gaussian(x, 1.))
            let node g x = m(m(x))
        "#;
        let err = kinds(src).unwrap_err();
        assert_eq!(err.stage, Stage::Kind);
    }

    #[test]
    fn composing_det_and_prob_equations_is_fine() {
        let src = r#"
            let node m y = x + d where
              rec d = y * 2.
              and x = sample (gaussian (d, 1.))
        "#;
        let k = kinds(src).unwrap();
        assert_eq!(k["m"], Kind::P);
    }
}
