//! Kind system: deterministic (`D`) vs probabilistic (`P`) expressions,
//! exactly the rules of Fig. 7.
//!
//! `D <= P` by the sub-typing rule, so the kind of a compound expression is
//! the join of its parts — except where a rule's premise *requires* `D`:
//! the arguments of `sample`, `observe`, `factor`, `value`, node
//! application, and `infer`. Probabilistic expressions may only occur
//! under an `infer`, which itself is deterministic.

use crate::ast::{Eq, Expr, NodeDecl, Program};
use crate::diag::Code;
use crate::error::{LangError, Pos, Stage};
use std::collections::HashMap;

/// Expression kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// Deterministic.
    D,
    /// Probabilistic.
    P,
}

impl std::fmt::Display for Kind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Kind::D => write!(f, "D"),
            Kind::P => write!(f, "P"),
        }
    }
}

/// Checks the whole program, returning each node's kind (the environment
/// `G` of Fig. 7). Nodes must be declared before use.
///
/// # Errors
///
/// Kind errors per Fig. 7: probabilistic expressions in
/// deterministic-only positions, unknown nodes, probabilistic `main`-style
/// nodes used without `infer` are reported at their use.
pub fn check_program(p: &Program) -> Result<HashMap<String, Kind>, LangError> {
    let mut env: HashMap<String, Kind> = HashMap::new();
    for node in &p.nodes {
        let k = check_node(node, &env)?;
        env.insert(node.name.clone(), k);
    }
    Ok(env)
}

fn check_node(node: &NodeDecl, env: &HashMap<String, Kind>) -> Result<Kind, LangError> {
    kind_of(&node.body, env)
}

/// Infers the kind of an expression under a node-kind environment.
///
/// # Errors
///
/// See [`check_program`].
pub fn kind_of(e: &Expr, env: &HashMap<String, Kind>) -> Result<Kind, LangError> {
    kind_at(e, env, None)
}

/// [`kind_of`] with the position of the nearest enclosing span annotation,
/// so errors point at the offending `sample`/`observe` instead of nothing.
fn kind_at(e: &Expr, env: &HashMap<String, Kind>, pos: Option<Pos>) -> Result<Kind, LangError> {
    match e {
        Expr::At(inner, p) => kind_at(inner, env, Some(*p)),
        Expr::Const(_) | Expr::Var(_) | Expr::Last(_) => Ok(Kind::D),
        Expr::Pair(a, b) => Ok(kind_at(a, env, pos)?.max(kind_at(b, env, pos)?)),
        Expr::Op(_, args) => {
            let mut k = Kind::D;
            for a in args {
                k = k.max(kind_at(a, env, pos)?);
            }
            Ok(k)
        }
        Expr::App(f, arg) => {
            require_d(arg, env, "the argument of a node application", pos)?;
            env.get(f.as_str()).copied().ok_or_else(|| {
                LangError::new(
                    Stage::Kind,
                    format!("unknown node `{f}` (nodes must be declared before use)"),
                )
                .with_code(Code::KIND_UNKNOWN_NODE)
                .with_pos(pos)
            })
        }
        Expr::Where { body, eqs } => {
            let mut k = kind_at(body, env, pos)?;
            for eq in eqs {
                match eq {
                    Eq::Def { expr, .. } => k = k.max(kind_at(expr, env, pos)?),
                    Eq::Init { .. } => {}
                    Eq::Automaton { .. } => {
                        return Err(LangError::new(
                            Stage::Kind,
                            "automaton must be expanded before kind checking (run crate::automata::expand_program)",
                        ))
                    }
                }
            }
            Ok(k)
        }
        Expr::Present { cond, then, els } | Expr::If { cond, then, els } => {
            Ok(kind_at(cond, env, pos)?
                .max(kind_at(then, env, pos)?)
                .max(kind_at(els, env, pos)?))
        }
        Expr::Reset { body, every } => Ok(kind_at(body, env, pos)?.max(kind_at(every, env, pos)?)),
        Expr::Sample(d) => {
            require_d(d, env, "the argument of `sample`", pos)?;
            Ok(Kind::P)
        }
        Expr::Observe(d, v) => {
            require_d(d, env, "the distribution argument of `observe`", pos)?;
            require_d(v, env, "the observed value of `observe`", pos)?;
            Ok(Kind::P)
        }
        Expr::Factor(w) => {
            require_d(w, env, "the argument of `factor`", pos)?;
            Ok(Kind::P)
        }
        Expr::ValueOp(x) => {
            require_d(x, env, "the argument of `value`", pos)?;
            Ok(Kind::P)
        }
        Expr::Infer { node, arg, .. } => {
            require_d(arg, env, "the input stream of `infer`", pos)?;
            if !env.contains_key(node.as_str()) {
                return Err(LangError::new(
                    Stage::Kind,
                    format!("unknown node `{node}` in `infer`"),
                )
                .with_code(Code::KIND_UNKNOWN_NODE)
                .with_pos(pos));
            }
            Ok(Kind::D)
        }
        Expr::Arrow(a, b) | Expr::Fby(a, b) => Ok(kind_at(a, env, pos)?.max(kind_at(b, env, pos)?)),
        Expr::Pre(x) => kind_at(x, env, pos),
    }
}

fn require_d(
    e: &Expr,
    env: &HashMap<String, Kind>,
    what: &str,
    enclosing: Option<Pos>,
) -> Result<(), LangError> {
    let at = e.span().or(enclosing);
    match kind_at(e, env, at)? {
        Kind::D => Ok(()),
        Kind::P => {
            // Point at the probabilistic leaf that poisoned the position,
            // not the enclosing construct.
            let at = p_witness(e, env, at).or(at);
            Err(LangError::new(
                Stage::Kind,
                format!("{what} must be deterministic; bind intermediate probabilistic values with equations"),
            )
            .with_code(Code::KIND_PROB_IN_DET)
            .with_pos(at))
        }
    }
}

/// The span of the first probabilistic leaf inside `e` (descending
/// through the first P-kinded child at each level).
fn p_witness(e: &Expr, env: &HashMap<String, Kind>, pos: Option<Pos>) -> Option<Pos> {
    let is_p = |x: &Expr| matches!(kind_at(x, env, None), Ok(Kind::P));
    let descend = |kids: &[&Expr]| {
        kids.iter()
            .copied()
            .find(|&x| is_p(x))
            .and_then(|x| p_witness(x, env, pos))
    };
    match e {
        Expr::At(inner, p) => p_witness(inner, env, Some(*p)),
        Expr::Sample(_)
        | Expr::Observe(_, _)
        | Expr::Factor(_)
        | Expr::ValueOp(_)
        | Expr::App(_, _) => pos,
        Expr::Pair(a, b)
        | Expr::Arrow(a, b)
        | Expr::Fby(a, b)
        | Expr::Reset { body: a, every: b } => descend(&[a, b]),
        Expr::Op(_, args) => descend(&args.iter().collect::<Vec<_>>()),
        Expr::Present { cond, then, els } | Expr::If { cond, then, els } => {
            descend(&[cond, then, els])
        }
        Expr::Pre(x) => p_witness(x, env, pos),
        Expr::Where { body, eqs } => {
            if is_p(body) {
                return p_witness(body, env, pos);
            }
            eqs.iter().find_map(|eq| match eq {
                Eq::Def { expr, .. } if is_p(expr) => p_witness(expr, env, pos),
                _ => None,
            })
        }
        _ => pos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn kinds(src: &str) -> Result<HashMap<String, Kind>, LangError> {
        check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn deterministic_node_is_d() {
        let k = kinds("let node f x = x + 1.").unwrap();
        assert_eq!(k["f"], Kind::D);
    }

    #[test]
    fn sampling_node_is_p() {
        let k = kinds("let node f x = sample(gaussian(x, 1.))").unwrap();
        assert_eq!(k["f"], Kind::P);
    }

    #[test]
    fn infer_makes_it_deterministic_again() {
        let src = r#"
            let node m y = x where
              rec x = sample (gaussian (0. -> pre x, 1.))
              and () = observe (gaussian (x, 1.), y)
            let node main y = infer 100 m y
        "#;
        let k = kinds(src).unwrap();
        assert_eq!(k["m"], Kind::P);
        assert_eq!(k["main"], Kind::D);
    }

    #[test]
    fn sample_of_sample_is_rejected() {
        // Fig. 7: sample's argument must be deterministic.
        let err =
            kinds("let node f x = sample(gaussian(sample(gaussian(x, 1.)), 1.))").unwrap_err();
        assert_eq!(err.stage, Stage::Kind);
        assert!(err.message.contains("sample"));
    }

    #[test]
    fn kind_errors_point_at_the_offending_sample() {
        let err =
            kinds("let node f x = sample(gaussian(sample(gaussian(x, 1.)), 1.))").unwrap_err();
        let pos = err.pos.expect("kind errors must carry a position");
        // ...............123456789012345678901234567890123456789
        // The inner `sample` starts at column 32.
        assert_eq!((pos.line, pos.col), (1, 32));
        assert_eq!(err.code, Some(crate::diag::Code::KIND_PROB_IN_DET));
    }

    #[test]
    fn probabilistic_observed_value_is_rejected() {
        let err =
            kinds("let node f x = observe(gaussian(0., 1.), sample(gaussian(x, 1.)))").unwrap_err();
        assert_eq!(err.stage, Stage::Kind);
    }

    #[test]
    fn applying_probabilistic_node_keeps_p() {
        let src = r#"
            let node m x = sample(gaussian(x, 1.))
            let node g x = m(x) + 1.
        "#;
        let k = kinds(src).unwrap();
        assert_eq!(k["g"], Kind::P);
    }

    #[test]
    fn unknown_node_is_an_error() {
        let err = kinds("let node f x = g(x)").unwrap_err();
        assert!(err.message.contains("unknown node"));
        let err = kinds("let node f x = infer 10 g x").unwrap_err();
        assert!(err.message.contains("unknown node"));
    }

    #[test]
    fn probabilistic_argument_to_application_rejected() {
        let src = r#"
            let node m x = sample(gaussian(x, 1.))
            let node g x = m(m(x))
        "#;
        let err = kinds(src).unwrap_err();
        assert_eq!(err.stage, Stage::Kind);
    }

    #[test]
    fn composing_det_and_prob_equations_is_fine() {
        let src = r#"
            let node m y = x + d where
              rec d = y * 2.
              and x = sample (gaussian (d, 1.))
        "#;
        let k = kinds(src).unwrap();
        assert_eq!(k["m"], Kind::P);
    }
}
