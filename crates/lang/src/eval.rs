//! The µF interpreter.
//!
//! Deterministic expressions get the classic strict-functional semantics;
//! probabilistic operators are routed through a
//! [`probzelus_core::prob::ProbCtx`], so the same compiled code runs under
//! every inference engine (Figs. 12–14). The `infer` forms are backed by
//! [`probzelus_core::infer::Infer`] over [`MufModel`]s — the state of a
//! compiled `infer` *is* the engine (the σ distribution over model states
//! of §3.3), and it is threaded linearly through the transition functions
//! like any other state.
//!
//! Uninitialized delays produce the `nil` poison value, which propagates
//! through strict operators and errors only at observation sinks — the
//! initialization analysis guarantees accepted programs never get there.

use crate::ast::{Const, OpName};
use crate::error::{LangError, Stage};
use crate::muf::{Closure, EngineRef, Env, MufDef, MufExpr, MufPat, MufProgram, MufValue};
use probzelus_core::adaptive::{DeadlineConfig, DeadlineStatus, DecisionTrace};
use probzelus_core::infer::{Infer, MemoryStats, Method, ParticleLayout, ResampleStats};
use probzelus_core::model::Model;
use probzelus_core::prob::ProbCtx;
use probzelus_core::supervisor::Health;
use probzelus_core::value::{DistExpr, Value};
use probzelus_core::{ops as vops, Posterior, RuntimeError};
use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Execution backend for per-particle transition functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// Tree-walking µF interpreter — the semantic oracle.
    #[default]
    Interp,
    /// Flat instruction tape (see [`crate::tape`]): each engine lowers its
    /// transition closure to register-indexed opcodes at the first step.
    /// Lowering is total-or-nothing per engine: any unsupported construct
    /// makes that engine keep interpreting (bit-identical by design), and
    /// [`MufEngine::tape_status`] reports which happened.
    Tape,
}

/// Evaluation options shared by every engine an instance allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Options {
    /// Inference method used by every `infer` site.
    pub method: Method,
    /// RNG seed (engines derive their own seeds from it).
    pub seed: u64,
    /// How per-particle transition functions execute.
    pub backend: ExecBackend,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            method: Method::StreamingDs,
            seed: rand::random(),
            backend: ExecBackend::Interp,
        }
    }
}

/// The probabilistic capability threaded through evaluation.
pub enum ProbSlot<'a> {
    /// Deterministic context (driver code).
    Det,
    /// Probabilistic context (inside a particle).
    Prob(&'a mut dyn ProbCtx),
}

/// The interpreter: global definitions plus evaluation options.
pub struct Interp {
    globals: RefCell<HashMap<String, MufValue>>,
    method: Method,
    backend: ExecBackend,
    rng: RefCell<SmallRng>,
    /// Telemetry handle inherited by every engine an `infer` site
    /// allocates; off unless built via [`Interp::new_with_obs`].
    #[cfg(feature = "obs")]
    obs: probzelus_core::obs::Obs,
    /// The options seed, kept so driver-tick span IDs (`eval.tick`) are a
    /// pure function of `(seed, tick)` like the engine-side spans.
    #[cfg(feature = "obs")]
    seed: u64,
}

impl std::fmt::Debug for Interp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Interp({} globals, {})",
            self.globals.borrow().len(),
            self.method
        )
    }
}

impl Interp {
    /// Builds an interpreter over a compiled program.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from top-level definitions.
    pub fn new(program: &MufProgram, options: Options) -> Result<Rc<Interp>, LangError> {
        Interp::load(
            Rc::new(Interp {
                globals: RefCell::new(HashMap::new()),
                method: options.method,
                backend: options.backend,
                rng: RefCell::new(SmallRng::seed_from_u64(options.seed)),
                #[cfg(feature = "obs")]
                obs: probzelus_core::obs::Obs::off(),
                #[cfg(feature = "obs")]
                seed: options.seed,
            }),
            program,
        )
    }

    /// Like [`Interp::new`], but every engine allocated by the program's
    /// `infer` sites reports through `obs` (scoped per engine to its
    /// inference-method label).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from top-level definitions.
    #[cfg(feature = "obs")]
    pub fn new_with_obs(
        program: &MufProgram,
        options: Options,
        obs: probzelus_core::obs::Obs,
    ) -> Result<Rc<Interp>, LangError> {
        Interp::load(
            Rc::new(Interp {
                globals: RefCell::new(HashMap::new()),
                method: options.method,
                backend: options.backend,
                rng: RefCell::new(SmallRng::seed_from_u64(options.seed)),
                obs,
                seed: options.seed,
            }),
            program,
        )
    }

    fn load(interp: Rc<Interp>, program: &MufProgram) -> Result<Rc<Interp>, LangError> {
        for MufDef { name, expr } in &program.defs {
            let v = interp.eval(&Env::empty(), expr, &mut ProbSlot::Det)?;
            interp.globals.borrow_mut().insert(name.clone(), v);
        }
        Ok(interp)
    }

    /// The telemetry handle engines inherit.
    #[cfg(feature = "obs")]
    pub fn obs(&self) -> &probzelus_core::obs::Obs {
        &self.obs
    }

    /// The configured inference method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The configured execution backend.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Looks up a global definition.
    pub fn global(&self, name: &str) -> Option<MufValue> {
        self.globals.borrow().get(name).cloned()
    }

    fn next_seed(&self) -> u64 {
        self.rng.borrow_mut().gen()
    }

    /// Applies a closure value to an argument.
    ///
    /// # Errors
    ///
    /// Type errors if `f` is not a closure; propagates body errors.
    pub fn apply(
        self: &Rc<Self>,
        f: &MufValue,
        arg: MufValue,
        prob: &mut ProbSlot<'_>,
    ) -> Result<MufValue, LangError> {
        match f {
            MufValue::Closure(c) => {
                let env = bind_pattern(&c.pat, arg, &c.env)?;
                self.eval(&env, &c.body, prob)
            }
            other => Err(LangError::new(
                Stage::Eval,
                format!("cannot apply a {}", other.kind()),
            )),
        }
    }

    /// Evaluates an expression.
    ///
    /// # Errors
    ///
    /// All runtime errors are reported at [`Stage::Eval`].
    pub fn eval(
        self: &Rc<Self>,
        env: &Env,
        e: &MufExpr,
        prob: &mut ProbSlot<'_>,
    ) -> Result<MufValue, LangError> {
        match e {
            MufExpr::Const(c) => Ok(const_value(c)),
            MufExpr::Var(x) => env
                .lookup(x)
                .cloned()
                .or_else(|| self.global(x))
                .ok_or_else(|| LangError::new(Stage::Eval, format!("unbound variable `{x}`"))),
            MufExpr::Tuple(xs) => Ok(MufValue::Tuple(
                xs.iter()
                    .map(|x| self.eval(env, x, prob))
                    .collect::<Result<_, _>>()?,
            )),
            MufExpr::Op(op, args) => {
                let vals: Vec<MufValue> = args
                    .iter()
                    .map(|a| self.eval(env, a, prob))
                    .collect::<Result<_, _>>()?;
                self.eval_op(*op, vals, prob)
            }
            MufExpr::If(c, t, f) => {
                let vc = self.eval(env, c, prob)?;
                match self.condition_value(vc, prob)? {
                    None => Err(LangError::new(
                        Stage::Eval,
                        "uninitialized condition; guard delays with `->`",
                    )),
                    Some(true) => self.eval(env, t, prob),
                    Some(false) => self.eval(env, f, prob),
                }
            }
            MufExpr::Select(c, t, f) => {
                let vc = self.eval(env, c, prob)?;
                let vt = self.eval(env, t, prob)?;
                let vf = self.eval(env, f, prob)?;
                match self.condition_value(vc, prob)? {
                    None => Ok(MufValue::Nil),
                    Some(true) => Ok(vt),
                    Some(false) => Ok(vf),
                }
            }
            MufExpr::App(f, arg) => {
                let vf = self.eval(env, f, prob)?;
                let va = self.eval(env, arg, prob)?;
                self.apply(&vf, va, prob)
            }
            MufExpr::Let(pat, bound, body) => {
                let vb = self.eval(env, bound, prob)?;
                let env = bind_pattern(pat, vb, env)?;
                self.eval(&env, body, prob)
            }
            MufExpr::Fun(pat, body) => Ok(MufValue::Closure(Rc::new(Closure {
                pat: pat.clone(),
                body: Rc::clone(body),
                env: env.clone(),
            }))),
            MufExpr::Sample(d) => {
                let dist = self.eval_dist(env, d, prob)?;
                match prob {
                    ProbSlot::Prob(ctx) => Ok(MufValue::V(ctx.sample(&dist)?)),
                    ProbSlot::Det => Err(outside_infer("sample")),
                }
            }
            MufExpr::Observe(d, o) => {
                let dist = self.eval_dist(env, d, prob)?;
                let obs = self.eval(env, o, prob)?.as_core()?;
                match prob {
                    ProbSlot::Prob(ctx) => {
                        ctx.observe(&dist, &obs)?;
                        Ok(MufValue::unit())
                    }
                    ProbSlot::Det => Err(outside_infer("observe")),
                }
            }
            MufExpr::Factor(w) => {
                let v = self.eval(env, w, prob)?.as_core()?;
                match prob {
                    ProbSlot::Prob(ctx) => {
                        let v = ctx.force(&v)?;
                        ctx.factor(v.as_float()?);
                        Ok(MufValue::unit())
                    }
                    ProbSlot::Det => Err(outside_infer("factor")),
                }
            }
            MufExpr::ValueOp(x) => {
                let v = self.eval(env, x, prob)?.as_core()?;
                match prob {
                    ProbSlot::Prob(ctx) => Ok(MufValue::V(ctx.force(&v)?)),
                    ProbSlot::Det => Err(outside_infer("value")),
                }
            }
            MufExpr::Freshen(inner) => Ok(self.eval(env, inner, prob)?.deep_clone()),
            MufExpr::Infer {
                body,
                state,
                prelude,
                ..
            } => {
                let closure = self.eval(env, body, prob)?;
                let engine_val = self.eval(env, state, prob)?;
                let MufValue::Engine(engine) = engine_val else {
                    return Err(LangError::new(
                        Stage::Eval,
                        format!("infer state must be an engine, found {}", engine_val.kind()),
                    ));
                };
                let posterior = {
                    let mut eng = engine.0.borrow_mut();
                    match prelude {
                        // Optimized site: `body` evaluated to the wrap
                        // function; re-close both prelude closures over
                        // the current environment, the step hook installs
                        // this tick's broadcast closure itself.
                        Some(p) => {
                            let transition = self.eval(env, p, prob)?;
                            eng.set_prelude_closures(transition, closure)?;
                        }
                        None => eng.set_closure(closure),
                    }
                    eng.step(&Value::Unit)?
                };
                Ok(MufValue::Tuple(vec![
                    MufValue::Posterior(Rc::new(posterior)),
                    MufValue::Engine(engine),
                ]))
            }
            MufExpr::EngineInit {
                particles,
                init,
                body,
                prelude,
            } => {
                // Evaluation order mirrors the unoptimized form: the
                // prelude expression holds `A(arg)` (evaluated first there
                // too), so any nested engine allocations draw seeds in the
                // same order with or without the optimizer.
                let pre = prelude
                    .as_ref()
                    .map(|p| self.eval(env, p, prob))
                    .transpose()?;
                let init_state = self.eval(env, init, prob)?;
                let closure = self.eval(env, body, prob)?;
                let mut engine = MufEngine::new(
                    self.clone(),
                    self.method,
                    *particles,
                    init_state,
                    closure.clone(),
                    false,
                    self.next_seed(),
                );
                if let Some(pre) = pre {
                    let MufValue::Tuple(mut vs) = pre else {
                        return Err(LangError::new(
                            Stage::Eval,
                            "engine prelude must be (state, transition)",
                        ));
                    };
                    if vs.len() != 2 {
                        return Err(LangError::new(
                            Stage::Eval,
                            "engine prelude must be (state, transition)",
                        ));
                    }
                    let transition = vs.pop().expect("length checked");
                    let pre_state = vs.pop().expect("length checked");
                    engine =
                        engine.with_prelude(MufPrelude::new(transition, closure, pre_state, false));
                }
                Ok(MufValue::Engine(EngineRef(Rc::new(RefCell::new(engine)))))
            }
        }
    }

    /// Resolves a conditional's scrutinee: concrete booleans pass through,
    /// symbolic booleans are realized ("the condition must be a concrete
    /// value", Fig. 14), `nil` yields `None`.
    pub(crate) fn condition_value(
        self: &Rc<Self>,
        v: MufValue,
        prob: &mut ProbSlot<'_>,
    ) -> Result<Option<bool>, LangError> {
        match v {
            MufValue::V(Value::Bool(b)) => Ok(Some(b)),
            MufValue::Nil => Ok(None),
            MufValue::V(sym @ (Value::Rv(_) | Value::Aff(_))) => match prob {
                ProbSlot::Prob(ctx) => Ok(Some(
                    ctx.force(&sym).map_err(host)?.as_bool().map_err(host)?,
                )),
                ProbSlot::Det => Err(LangError::new(
                    Stage::Eval,
                    "symbolic condition outside of `infer`",
                )),
            },
            other => Err(LangError::new(
                Stage::Eval,
                format!("condition must be a boolean, found {}", other.kind()),
            )),
        }
    }

    fn eval_dist(
        self: &Rc<Self>,
        env: &Env,
        e: &MufExpr,
        prob: &mut ProbSlot<'_>,
    ) -> Result<DistExpr, LangError> {
        let v = self.eval(env, e, prob)?;
        match v {
            MufValue::V(Value::Dist(d)) => Ok(*d),
            MufValue::Nil => Err(LangError::new(
                Stage::Eval,
                "uninitialized distribution; guard delays with `->`",
            )),
            other => Err(LangError::new(
                Stage::Eval,
                format!("expected a distribution, found {}", other.kind()),
            )),
        }
    }

    fn eval_op(
        self: &Rc<Self>,
        op: OpName,
        mut args: Vec<MufValue>,
        prob: &mut ProbSlot<'_>,
    ) -> Result<MufValue, LangError> {
        // Nil poison propagates through strict operators.
        if args.iter().any(MufValue::is_nil) {
            return Ok(MufValue::Nil);
        }
        // Posterior-level operators.
        match (op, args.first()) {
            (OpName::MeanFloat, Some(MufValue::Posterior(p))) => {
                return Ok(MufValue::V(Value::Float(p.mean_float())));
            }
            (OpName::VarianceFloat, Some(MufValue::Posterior(p))) => {
                return Ok(MufValue::V(Value::Float(p.variance_float())));
            }
            (OpName::Prob, Some(MufValue::Posterior(p))) => {
                let lo = args[1].as_core()?.as_float().map_err(host)?;
                let hi = args[2].as_core()?.as_float().map_err(host)?;
                return Ok(MufValue::V(Value::Float(p.prob_interval(lo, hi))));
            }
            (OpName::DrawDist, Some(MufValue::Posterior(p))) => {
                let v = p.sample(&mut *self.rng.borrow_mut());
                return Ok(MufValue::V(v));
            }
            _ => {}
        }
        // Projections work on interpreter tuples directly — and own their
        // argument, so the projected element moves out instead of cloning.
        if matches!(op, OpName::Fst | OpName::Snd) {
            if let MufValue::Tuple(xs) = &mut args[0] {
                let mut xs = std::mem::take(xs);
                return match (op, xs.len()) {
                    (OpName::Fst, n) if n >= 1 => Ok(xs.swap_remove(0)),
                    (OpName::Snd, 2) => Ok(xs.swap_remove(1)),
                    (OpName::Snd, n) if n > 2 => {
                        xs.remove(0);
                        Ok(MufValue::Tuple(xs))
                    }
                    _ => Err(LangError::new(Stage::Eval, "projection from empty tuple")),
                };
            }
        }
        // Core value operators.
        let vals: Vec<Value> = args.iter().map(|a| a.as_core()).collect::<Result<_, _>>()?;
        match core_op(op, &vals, self) {
            Ok(v) => Ok(MufValue::V(v)),
            Err(RuntimeError::NeedsValue(_)) => {
                // Symbolic operand where a concrete one is needed: realize
                // (this is the semantics of Fig. 14 for partially evaluated
                // constructs like conditions) and retry once.
                if let ProbSlot::Prob(ctx) = prob {
                    let forced: Vec<Value> = vals
                        .iter()
                        .map(|v| ctx.force(v))
                        .collect::<Result<_, _>>()
                        .map_err(host)?;
                    core_op(op, &forced, self).map(MufValue::V).map_err(host)
                } else {
                    Err(LangError::new(
                        Stage::Eval,
                        "symbolic value reached a deterministic operator",
                    ))
                }
            }
            Err(e) => Err(host(e)),
        }
    }

    /// [`Interp::eval_op`] over borrowed arguments — the tape executor's
    /// entry point (registers keep their values; results are computed
    /// without consuming the operand slots). Semantics, including error
    /// messages and RNG consumption, mirror `eval_op` exactly.
    pub(crate) fn op_on_refs(
        self: &Rc<Self>,
        op: OpName,
        args: &[&MufValue],
        prob: &mut ProbSlot<'_>,
    ) -> Result<MufValue, LangError> {
        if args.iter().any(|a| a.is_nil()) {
            return Ok(MufValue::Nil);
        }
        match (op, args.first()) {
            (OpName::MeanFloat, Some(MufValue::Posterior(p))) => {
                return Ok(MufValue::V(Value::Float(p.mean_float())));
            }
            (OpName::VarianceFloat, Some(MufValue::Posterior(p))) => {
                return Ok(MufValue::V(Value::Float(p.variance_float())));
            }
            (OpName::Prob, Some(MufValue::Posterior(p))) => {
                let lo = args[1].as_core()?.as_float().map_err(host)?;
                let hi = args[2].as_core()?.as_float().map_err(host)?;
                return Ok(MufValue::V(Value::Float(p.prob_interval(lo, hi))));
            }
            (OpName::DrawDist, Some(MufValue::Posterior(p))) => {
                let v = p.sample(&mut *self.rng.borrow_mut());
                return Ok(MufValue::V(v));
            }
            _ => {}
        }
        if matches!(op, OpName::Fst | OpName::Snd) {
            if let MufValue::Tuple(xs) = args[0] {
                return match (op, xs.as_slice()) {
                    (OpName::Fst, [a, ..]) => Ok(a.clone()),
                    (OpName::Snd, [_, b]) => Ok(b.clone()),
                    (OpName::Snd, [_, rest @ ..]) if rest.len() > 1 => {
                        Ok(MufValue::Tuple(rest.to_vec()))
                    }
                    _ => Err(LangError::new(Stage::Eval, "projection from empty tuple")),
                };
            }
        }
        let vals: Vec<Value> = args.iter().map(|a| a.as_core()).collect::<Result<_, _>>()?;
        match core_op(op, &vals, self) {
            Ok(v) => Ok(MufValue::V(v)),
            Err(RuntimeError::NeedsValue(_)) => {
                if let ProbSlot::Prob(ctx) = prob {
                    let forced: Vec<Value> = vals
                        .iter()
                        .map(|v| ctx.force(v))
                        .collect::<Result<_, _>>()
                        .map_err(host)?;
                    core_op(op, &forced, self).map(MufValue::V).map_err(host)
                } else {
                    Err(LangError::new(
                        Stage::Eval,
                        "symbolic value reached a deterministic operator",
                    ))
                }
            }
            Err(e) => Err(host(e)),
        }
    }
}

pub(crate) fn outside_infer(what: &str) -> LangError {
    LangError::new(
        Stage::Eval,
        format!("`{what}` used outside of `infer` (probabilistic code needs an inference context)"),
    )
}

pub(crate) fn host(e: RuntimeError) -> LangError {
    LangError::new(Stage::Eval, e.to_string())
}

pub(crate) fn const_value(c: &Const) -> MufValue {
    match c {
        Const::Unit => MufValue::V(Value::Unit),
        Const::Bool(b) => MufValue::V(Value::Bool(*b)),
        Const::Int(n) => MufValue::V(Value::Int(*n)),
        Const::Float(x) => MufValue::V(Value::Float(*x)),
        Const::Nil => MufValue::Nil,
    }
}

/// Binds a pattern against a value, extending `env`.
///
/// Destructuring `nil` binds every variable to `nil` (poison spreads
/// through structure); destructuring core pairs works for two-element
/// tuples.
fn bind_pattern(pat: &MufPat, value: MufValue, env: &Env) -> Result<Env, LangError> {
    bind_pattern_owned(pat, value, env.clone())
}

/// [`bind_pattern`] over an owned environment: nested tuple patterns
/// thread one environment through instead of cloning the `Rc` spine at
/// every binder.
fn bind_pattern_owned(pat: &MufPat, value: MufValue, env: Env) -> Result<Env, LangError> {
    match (pat, value) {
        (MufPat::Wildcard, _) | (MufPat::Unit, _) => Ok(env),
        (MufPat::Var(x), v) => Ok(env.bind_owned(x.clone(), v)),
        (MufPat::Tuple(ps), MufValue::Tuple(vs)) => {
            if ps.len() != vs.len() {
                return Err(LangError::new(
                    Stage::Eval,
                    format!(
                        "tuple arity mismatch: pattern {} vs value {}",
                        ps.len(),
                        vs.len()
                    ),
                ));
            }
            let mut env = env;
            for (p, v) in ps.iter().zip(vs) {
                env = bind_pattern_owned(p, v, env)?;
            }
            Ok(env)
        }
        (MufPat::Tuple(ps), MufValue::V(Value::Pair(a, b))) if ps.len() == 2 => {
            let env = bind_pattern_owned(&ps[0], MufValue::V(*a), env)?;
            bind_pattern_owned(&ps[1], MufValue::V(*b), env)
        }
        (MufPat::Tuple(ps), MufValue::Nil) => {
            let mut env = env;
            for p in ps {
                env = bind_pattern_owned(p, MufValue::Nil, env)?;
            }
            Ok(env)
        }
        (MufPat::Tuple(_), other) => Err(LangError::new(
            Stage::Eval,
            format!("cannot destructure a {}", other.kind()),
        )),
    }
}

pub(crate) fn core_op(op: OpName, v: &[Value], interp: &Rc<Interp>) -> Result<Value, RuntimeError> {
    use OpName::*;
    match op {
        Add => vops::add(&v[0], &v[1]),
        Sub => vops::sub(&v[0], &v[1]),
        Mul => vops::mul(&v[0], &v[1]),
        Div => vops::div(&v[0], &v[1]),
        Neg => vops::neg(&v[0]),
        Lt => vops::lt(&v[0], &v[1]),
        Le => vops::le(&v[0], &v[1]),
        Gt => vops::gt(&v[0], &v[1]),
        Ge => vops::ge(&v[0], &v[1]),
        Eq => vops::eq(&v[0], &v[1]),
        Ne => vops::not(&vops::eq(&v[0], &v[1])?),
        And => vops::and(&v[0], &v[1]),
        Or => vops::or(&v[0], &v[1]),
        Not => vops::not(&v[0]),
        Fst => vops::fst(&v[0]),
        Snd => vops::snd(&v[0]),
        Exp => vops::float_fn(&v[0], f64::exp),
        Log => vops::float_fn(&v[0], f64::ln),
        Sqrt => vops::float_fn(&v[0], f64::sqrt),
        Abs => vops::float_fn(&v[0], f64::abs),
        Min => vops::float_fn2(&v[0], &v[1], f64::min),
        Max => vops::float_fn2(&v[0], &v[1], f64::max),
        FloatOfInt => Ok(Value::Float(v[0].as_int()? as f64)),
        MeanFloat | VarianceFloat | Prob | DrawDist => {
            // Distribution-valued (not posterior-valued) arguments.
            let d = v[0].as_dist()?.concrete()?;
            match op {
                MeanFloat => {
                    d.mean_float()
                        .map(Value::Float)
                        .ok_or_else(|| RuntimeError::TypeMismatch {
                            expected: "numeric distribution",
                            got: format!("{d}"),
                        })
                }
                VarianceFloat => {
                    d.variance_float()
                        .map(Value::Float)
                        .ok_or_else(|| RuntimeError::TypeMismatch {
                            expected: "numeric distribution",
                            got: format!("{d}"),
                        })
                }
                Prob => {
                    let lo = v[1].as_float()?;
                    let hi = v[2].as_float()?;
                    d.prob_interval(lo, hi).map(Value::Float).ok_or_else(|| {
                        RuntimeError::TypeMismatch {
                            expected: "interval-capable distribution",
                            got: format!("{d}"),
                        }
                    })
                }
                DrawDist => Ok(d.sample(&mut *interp.rng.borrow_mut())),
                _ => unreachable!(),
            }
        }
        Gaussian => Ok(Value::dist(DistExpr::gaussian(v[0].clone(), v[1].clone()))),
        Beta => Ok(Value::dist(DistExpr::beta(v[0].clone(), v[1].clone()))),
        Bernoulli => Ok(Value::dist(DistExpr::bernoulli(v[0].clone()))),
        Uniform => Ok(Value::dist(DistExpr::uniform(v[0].clone(), v[1].clone()))),
        Gamma => Ok(Value::dist(DistExpr::gamma(v[0].clone(), v[1].clone()))),
        Poisson => Ok(Value::dist(DistExpr::poisson(v[0].clone()))),
        Exponential => Ok(Value::dist(DistExpr::exponential(v[0].clone()))),
        Binomial => Ok(Value::dist(DistExpr::binomial(v[0].clone(), v[1].clone()))),
        Dirac => Ok(Value::dist(DistExpr::dirac(v[0].clone()))),
    }
}

/// The externalized particle state: held whole while the interpreter runs
/// the transition, split into the tape's flat state slots (depth-first
/// leaves of the state pattern) once an engine's tape is ready.
#[derive(Debug)]
pub(crate) enum ModelState {
    Whole(MufValue),
    Flat(Vec<MufValue>),
}

impl ModelState {
    fn deep_clone(&self) -> ModelState {
        match self {
            ModelState::Whole(v) => ModelState::Whole(v.deep_clone()),
            ModelState::Flat(vs) => ModelState::Flat(vs.iter().map(MufValue::deep_clone).collect()),
        }
    }
}

/// A probabilistic µF model driven by an inference engine: a transition
/// closure plus its externalized state.
pub struct MufModel {
    interp: Rc<Interp>,
    closure: Rc<RefCell<MufValue>>,
    state: ModelState,
    init_state: MufValue,
    takes_input: bool,
    /// Lazily-lowered instruction tape shared by every particle of the
    /// engine (`None` under [`ExecBackend::Interp`]).
    tape: Option<Rc<crate::tape::TapeCell>>,
}

impl std::fmt::Debug for MufModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MufModel(takes_input: {})", self.takes_input)
    }
}

impl Clone for MufModel {
    fn clone(&self) -> Self {
        MufModel {
            interp: self.interp.clone(),
            closure: self.closure.clone(),
            state: self.state.deep_clone(),
            init_state: self.init_state.clone(),
            takes_input: self.takes_input,
            tape: self.tape.clone(),
        }
    }
}

impl Model for MufModel {
    type Input = Value;

    fn step(&mut self, ctx: &mut dyn ProbCtx, input: &Value) -> Result<Value, RuntimeError> {
        if let Some(cell) = &self.tape {
            if let Some(shared) = cell.ensure(
                &self.interp,
                &self.closure,
                &self.init_state,
                self.takes_input,
            ) {
                match crate::tape::step_model(
                    &self.interp,
                    cell,
                    &shared,
                    &self.closure,
                    &mut self.state,
                    ctx,
                    input,
                )
                .map_err(|e| RuntimeError::Host(e.to_string()))?
                {
                    crate::tape::TapeStep::Done(v) => return Ok(v),
                    // The cell was poisoned mid-run; rejoin the flat state
                    // and continue on the interpreter path below.
                    crate::tape::TapeStep::FallBack => {
                        if let ModelState::Flat(slots) = &mut self.state {
                            let slots = std::mem::take(slots);
                            self.state = ModelState::Whole(crate::tape::join_state(
                                &mut slots.into_iter(),
                                &shared.prog.shape,
                            ));
                        }
                    }
                }
            }
        }
        let closure = self.closure.borrow().clone();
        let ModelState::Whole(whole) = &mut self.state else {
            return Err(RuntimeError::Host(
                "tape state observed on the interpreter path".into(),
            ));
        };
        let state = std::mem::replace(whole, MufValue::Nil);
        let arg = if self.takes_input {
            MufValue::Tuple(vec![state, MufValue::V(input.clone())])
        } else {
            state
        };
        let mut prob = ProbSlot::Prob(ctx);
        let result = self
            .interp
            .apply(&closure, arg, &mut prob)
            .map_err(|e| RuntimeError::Host(e.to_string()))?;
        match result {
            MufValue::Tuple(mut vs) if vs.len() == 2 => {
                let next = vs.pop().expect("length checked");
                let out = vs.pop().expect("length checked");
                self.state = ModelState::Whole(next);
                out.as_core().map_err(|e| RuntimeError::Host(e.to_string()))
            }
            other => Err(RuntimeError::Host(format!(
                "transition function must return (value, state), got {}",
                other.kind()
            ))),
        }
    }

    fn reset(&mut self) {
        self.state = match self.tape.as_ref().and_then(|c| c.ready()) {
            Some(shared) => ModelState::Flat(
                shared
                    .prog
                    .init_slots
                    .iter()
                    .map(MufValue::deep_clone)
                    .collect(),
            ),
            None => ModelState::Whole(self.init_state.deep_clone()),
        };
    }

    fn for_each_state_value(&mut self, f: &mut dyn FnMut(&mut Value)) {
        match &mut self.state {
            ModelState::Whole(s) => s.for_each_value_mut(f),
            ModelState::Flat(slots) => {
                for s in slots {
                    s.for_each_value_mut(f);
                }
            }
        }
    }
}

/// The coordinator-side state of a hoisted particle-invariant prelude
/// (the optimizing µF pipeline's per-tick shared computation).
///
/// Once per engine step, *before* any particle runs, `transition` is
/// applied to the prelude state (and the tick input, on driver-facing
/// engines), producing `(out, state')`; `wrap` applied to `out` yields
/// the per-particle transition closure for this tick, which is written
/// into the engine's shared closure slot. Particles then all read the
/// same broadcast value instead of recomputing the invariant equations
/// N times.
#[derive(Clone)]
pub struct MufPrelude {
    transition: MufValue,
    wrap: MufValue,
    state: MufValue,
    init_state: MufValue,
    takes_input: bool,
}

impl MufPrelude {
    /// Builds a prelude from its transition and wrap closures and the
    /// initial prelude state. `takes_input` mirrors the engine's own
    /// flag: driver-facing engines feed the tick input to the prelude.
    pub fn new(
        transition: MufValue,
        wrap: MufValue,
        init_state: MufValue,
        takes_input: bool,
    ) -> MufPrelude {
        MufPrelude {
            transition,
            wrap,
            state: init_state.deep_clone(),
            init_state,
            takes_input,
        }
    }

    /// One coordinator-side prelude tick: advance the prelude state and
    /// install this tick's broadcast closure into the engine's slot.
    fn advance(
        &mut self,
        interp: &Rc<Interp>,
        input: &Value,
        slot: &RefCell<MufValue>,
    ) -> Result<(), RuntimeError> {
        let host = |e: LangError| RuntimeError::Host(e.to_string());
        let state = std::mem::replace(&mut self.state, MufValue::Nil);
        let arg = if self.takes_input {
            MufValue::Tuple(vec![state, MufValue::V(input.clone())])
        } else {
            state
        };
        let result = interp
            .apply(&self.transition, arg, &mut ProbSlot::Det)
            .map_err(host)?;
        match result {
            MufValue::Tuple(mut vs) if vs.len() == 2 => {
                let next = vs.pop().expect("length checked");
                let out = vs.pop().expect("length checked");
                self.state = next;
                let closure = interp
                    .apply(&self.wrap, out, &mut ProbSlot::Det)
                    .map_err(host)?;
                *slot.borrow_mut() = closure;
                Ok(())
            }
            other => Err(RuntimeError::Host(format!(
                "prelude transition must return (value, state), got {}",
                other.kind()
            ))),
        }
    }

    fn reset(&mut self) {
        self.state = self.init_state.deep_clone();
    }
}

/// An inference engine over µF models (the runtime value of a compiled
/// `infer`'s state).
#[derive(Clone)]
pub struct MufEngine {
    inner: Infer<MufModel>,
    closure: Rc<RefCell<MufValue>>,
    interp: Rc<Interp>,
    prelude: Option<MufPrelude>,
    /// Shared with every particle model under [`ExecBackend::Tape`]; the
    /// engine bumps its epoch whenever the closure slot is rewritten so
    /// the tape refreshes its captured-environment registers.
    tape: Option<Rc<crate::tape::TapeCell>>,
}

impl std::fmt::Debug for MufEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MufEngine({}, {} particles)",
            self.inner.method(),
            self.inner.num_particles()
        )
    }
}

impl MufEngine {
    /// Allocates an engine whose particles start from (deep clones of)
    /// `init_state`, with `closure` as the transition function.
    pub fn new(
        interp: Rc<Interp>,
        method: Method,
        particles: usize,
        init_state: MufValue,
        closure: MufValue,
        takes_input: bool,
        seed: u64,
    ) -> MufEngine {
        let slot = Rc::new(RefCell::new(closure));
        let tape = (interp.backend == ExecBackend::Tape)
            .then(|| Rc::new(crate::tape::TapeCell::default()));
        #[cfg(feature = "obs")]
        let obs = interp.obs.clone();
        let model = MufModel {
            interp: interp.clone(),
            closure: slot.clone(),
            state: ModelState::Whole(init_state.deep_clone()),
            init_state,
            takes_input,
            tape: tape.clone(),
        };
        let inner = Infer::with_seed(method, particles, model, seed);
        #[cfg(feature = "obs")]
        let inner = inner.with_obs(obs);
        MufEngine {
            inner,
            closure: slot,
            interp,
            prelude: None,
            tape,
        }
    }

    /// Attaches a hoisted particle-invariant prelude (see [`MufPrelude`]).
    /// The engine's shared closure slot is then refreshed by the prelude
    /// at the start of every step rather than by [`MufEngine::set_closure`].
    #[must_use]
    pub fn with_prelude(mut self, prelude: MufPrelude) -> Self {
        self.prelude = Some(prelude);
        self
    }

    /// Re-closes the prelude's transition and wrap functions over the
    /// current environment (the embedded-`infer` analogue of
    /// [`MufEngine::set_closure`] for optimized sites).
    ///
    /// # Errors
    ///
    /// When no prelude is attached — the compiled site and the engine
    /// disagree, which indicates mixed optimized/unoptimized code.
    pub fn set_prelude_closures(
        &mut self,
        transition: MufValue,
        wrap: MufValue,
    ) -> Result<(), LangError> {
        let Some(pre) = self.prelude.as_mut() else {
            return Err(LangError::new(
                Stage::Eval,
                "optimized infer site stepped an engine without a prelude",
            ));
        };
        pre.transition = transition;
        pre.wrap = wrap;
        Ok(())
    }

    /// Replaces the transition closure (the compiled `infer` re-closes the
    /// transition over the current environment at every step, which is how
    /// deterministic inputs flow into the model).
    pub fn set_closure(&mut self, closure: MufValue) {
        *self.closure.borrow_mut() = closure;
        if let Some(cell) = &self.tape {
            cell.bump();
        }
    }

    /// One inference step.
    ///
    /// # Errors
    ///
    /// Propagates model evaluation errors.
    pub fn step(&mut self, input: &Value) -> Result<Posterior, LangError> {
        let MufEngine {
            inner,
            closure,
            interp,
            prelude,
            tape,
        } = self;
        match prelude {
            None => inner.step(input).map_err(|e| e.into()),
            Some(pre) => {
                let mut hook = || {
                    pre.advance(interp, input, closure)?;
                    // The slot now holds this tick's broadcast closure;
                    // have the tape re-read its environment registers.
                    if let Some(cell) = tape {
                        cell.bump();
                    }
                    Ok(())
                };
                inner
                    .step_outcome_with(input, Some(&mut hook))
                    .map(|o| o.posterior)
                    .map_err(|e| e.into())
            }
        }
    }

    /// Tape-backend status: `None` under [`ExecBackend::Interp`]; under
    /// [`ExecBackend::Tape`], `Ok(())` once the transition is lowered and
    /// running on the tape, `Err(reason)` while lowering is pending (no
    /// step taken yet) or after it fell back to the interpreter.
    pub fn tape_status(&self) -> Option<Result<(), String>> {
        self.tape.as_ref().map(|c| c.status())
    }

    /// Bytes of tape scratch (the register file) currently held, when the
    /// tape is active — the allocation-plateau witness for Bounded(k)
    /// programs.
    pub fn tape_scratch_bytes(&self) -> Option<usize> {
        self.tape
            .as_ref()
            .and_then(|c| c.ready())
            .map(|s| s.scratch_bytes())
    }

    /// Aggregate graph memory statistics (Fig. 4 / Fig. 19).
    pub fn memory(&self) -> MemoryStats {
        self.inner.memory()
    }

    /// Effective sample size at the last step.
    pub fn last_ess(&self) -> f64 {
        self.inner.last_ess()
    }

    /// Number of particles.
    pub fn num_particles(&self) -> usize {
        self.inner.num_particles()
    }

    /// Inference method.
    pub fn method(&self) -> Method {
        self.inner.method()
    }

    /// Restarts inference from the initial model state (including the
    /// prelude state, when one is attached).
    pub fn reset(&mut self) {
        self.inner.reset();
        if let Some(pre) = self.prelude.as_mut() {
            pre.reset();
        }
    }

    /// Selects the particle storage layout (resets particle state when it
    /// changes, exactly like [`Infer::with_particle_layout`]).
    #[must_use]
    pub fn with_particle_layout(mut self, layout: ParticleLayout) -> Self {
        self.inner = self.inner.with_particle_layout(layout);
        self
    }

    /// Cumulative resampling statistics since the last reset.
    pub fn resample_stats(&self) -> ResampleStats {
        self.inner.resample_stats()
    }

    /// Attaches a per-tick deadline budget and adaptive controller (see
    /// [`Infer::with_deadline`]). Attach after other builder knobs so the
    /// controller captures the intended resampling policy as its baseline.
    #[must_use]
    pub fn with_deadline(mut self, cfg: DeadlineConfig) -> Self {
        self.inner = self.inner.with_deadline(cfg);
        self
    }

    /// Replays a previously recorded decision trace instead of measuring
    /// the clock (see [`Infer::with_decision_replay`]).
    #[must_use]
    pub fn with_decision_replay(mut self, trace: DecisionTrace) -> Self {
        self.inner = self.inner.with_decision_replay(trace);
        self
    }

    /// Updates the deadline budget mid-stream. Returns `false` when no
    /// controller is attached or the engine is replaying a trace.
    pub fn set_deadline_budget(&mut self, budget_ms: f64) -> bool {
        self.inner.set_deadline_budget(budget_ms)
    }

    /// The adaptive controller's decision trace so far (measuring or
    /// replaying), or `None` when no deadline is attached. This is the
    /// pzserve-facing query surface: serialize with
    /// [`DecisionTrace::to_jsonl`].
    pub fn decision_trace(&self) -> Option<&DecisionTrace> {
        self.inner.decision_trace()
    }

    /// Deadline misses observed so far (0 without a measuring controller).
    pub fn deadline_misses(&self) -> u64 {
        self.inner.deadline_misses()
    }

    /// Current deadline status, when a measuring controller is attached.
    pub fn deadline_status(&self) -> Option<DeadlineStatus> {
        self.inner.deadline_status()
    }

    /// Health of the most recent step, including deadline pressure.
    pub fn last_health(&self) -> Option<&Health> {
        self.inner.last_health()
    }
}

/// An instantiated deterministic node: the driver-facing stream function.
///
/// When the interpreter carries a live telemetry handle (built via
/// [`Interp::new_with_obs`]), each [`Instance::step`] emits an `eval.tick`
/// root span covering the whole driver tick — engine-side `tick` trees from
/// embedded `infer` sites appear alongside it in the sink stream.
#[derive(Debug)]
pub struct Instance {
    interp: Rc<Interp>,
    step: MufValue,
    state: MufValue,
    init_state: MufValue,
    /// Monotonic driver-tick counter (not rewound by [`Instance::reset`],
    /// so every emitted span ID is unique within a run).
    #[cfg(feature = "obs")]
    tick: u64,
}

impl Instance {
    /// Instantiates node `name` from the interpreter's globals.
    ///
    /// # Errors
    ///
    /// Unknown node, or initialization failure.
    pub fn new(interp: Rc<Interp>, name: &str) -> Result<Instance, LangError> {
        let step = interp
            .global(&crate::compile::step_name(name))
            .ok_or_else(|| LangError::new(Stage::Eval, format!("unknown node `{name}`")))?;
        let init_thunk = interp
            .global(&crate::compile::init_name(name))
            .ok_or_else(|| LangError::new(Stage::Eval, format!("unknown node `{name}`")))?;
        let state = interp.apply(&init_thunk, MufValue::unit(), &mut ProbSlot::Det)?;
        Ok(Instance {
            interp,
            step,
            init_state: state.clone(),
            state,
            #[cfg(feature = "obs")]
            tick: 0,
        })
    }

    /// Executes one synchronous step with the given input.
    ///
    /// # Errors
    ///
    /// Evaluation errors (including errors from embedded `infer` engines).
    pub fn step(&mut self, input: Value) -> Result<MufValue, LangError> {
        #[cfg(feature = "obs")]
        let t0 = self.interp.obs.enabled().then(std::time::Instant::now);
        let state = std::mem::replace(&mut self.state, MufValue::Nil);
        let arg = MufValue::Tuple(vec![state, MufValue::V(input)]);
        let result = self
            .interp
            .apply(&self.step.clone(), arg, &mut ProbSlot::Det)?;
        let out = match result {
            MufValue::Tuple(mut vs) if vs.len() == 2 => {
                let next = vs.pop().expect("length checked");
                let out = vs.pop().expect("length checked");
                self.state = next;
                Ok(out)
            }
            other => Err(LangError::new(
                Stage::Eval,
                format!("node step must return (value, state), got {}", other.kind()),
            )),
        };
        #[cfg(feature = "obs")]
        if let Some(t0) = t0 {
            use probzelus_core::trace::{self, SpanRecord};
            let tick = self.tick;
            self.tick += 1;
            // The span name distinguishes the execution backend so trace
            // consumers can attribute driver-tick time to the interpreter
            // or the instruction tape without a separate field.
            let (name, phase) = match self.interp.backend {
                ExecBackend::Interp => (trace::spans::EVAL, trace::phases::EVAL),
                ExecBackend::Tape => (trace::spans::EVAL_TAPE, trace::phases::EVAL_TAPE),
            };
            let rec = SpanRecord {
                tick,
                name,
                id: trace::span_id(self.interp.seed, tick, phase, 0),
                parent: None,
                index: None,
                dur_ms: t0.elapsed().as_secs_f64() * 1e3,
            };
            self.interp.obs.span(&rec);
        }
        out
    }

    /// Restores the initial state.
    pub fn reset(&mut self) {
        self.state = self.init_state.deep_clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_program;
    use crate::parser::parse_program;
    use crate::schedule::schedule_program;
    use crate::transform::desugar_program;

    fn build(src: &str, options: Options) -> (Rc<Interp>, MufProgram) {
        let p = parse_program(src).unwrap();
        let p = desugar_program(&p);
        let p = schedule_program(&p).unwrap();
        let muf = compile_program(&p).unwrap();
        let interp = Interp::new(&muf, options).unwrap();
        (interp, muf)
    }

    use crate::muf::MufProgram;

    fn det_instance(src: &str, node: &str) -> Instance {
        let (interp, _) = build(
            src,
            Options {
                method: Method::StreamingDs,
                seed: 0,
                backend: ExecBackend::Interp,
            },
        );
        Instance::new(interp, node).unwrap()
    }

    fn float_out(v: &MufValue) -> f64 {
        v.as_core().unwrap().as_float().unwrap()
    }

    #[test]
    fn deterministic_counter_steps() {
        let mut inst = det_instance(
            "let node count x = n where rec n = 0. -> pre n + x",
            "count",
        );
        let outs: Vec<f64> = (0..5)
            .map(|_| float_out(&inst.step(Value::Float(2.0)).unwrap()))
            .collect();
        assert_eq!(outs, vec![0.0, 2.0, 4.0, 6.0, 8.0]);
        inst.reset();
        assert_eq!(float_out(&inst.step(Value::Float(2.0)).unwrap()), 0.0);
    }

    #[test]
    fn integr_from_the_paper_intro() {
        // Backward Euler with h = 1: x = xo -> pre x + x' * h.
        let src = r#"
            let node integr (xo, x') = x where
              rec x = xo -> pre x + x' * 1.0
        "#;
        let mut inst = det_instance(src, "integr");
        let step = |inst: &mut Instance, xo: f64, dx: f64| {
            float_out(
                &inst
                    .step(Value::pair(Value::Float(xo), Value::Float(dx)))
                    .unwrap(),
            )
        };
        assert_eq!(step(&mut inst, 1.0, 2.0), 1.0);
        assert_eq!(step(&mut inst, 9.0, 2.0), 3.0);
        assert_eq!(step(&mut inst, 9.0, 2.0), 5.0);
    }

    #[test]
    fn node_application_keeps_separate_state() {
        let src = r#"
            let node count x = n where rec n = x -> pre n + x
            let node two x = (count(x), count(x + x))
        "#;
        let mut inst = det_instance(src, "two");
        let out = inst.step(Value::Float(1.0)).unwrap().as_core().unwrap();
        assert_eq!(out, Value::pair(Value::Float(1.0), Value::Float(2.0)));
        let out = inst.step(Value::Float(1.0)).unwrap().as_core().unwrap();
        assert_eq!(out, Value::pair(Value::Float(2.0), Value::Float(4.0)));
    }

    #[test]
    fn present_is_lazy_in_state() {
        // The `then` branch counts activations only.
        let src = r#"
            let node f c = present c -> (1. -> pre y + 1.) else 0. where
              rec y = 0.0
        "#;
        // y is unused inside present; use a self-contained counter instead.
        let src2 = r#"
            let node f c = present c -> k else 0. where
              rec k = reset (1. -> pre k + 1.) every false
        "#;
        let _ = src;
        let mut inst = det_instance(src2, "f");
        let step = |i: &mut Instance, c: bool| float_out(&i.step(Value::Bool(c)).unwrap());
        assert_eq!(step(&mut inst, true), 1.0);
        assert_eq!(step(&mut inst, false), 0.0);
        assert_eq!(step(&mut inst, true), 3.0);
    }

    #[test]
    fn reset_reinitializes_state() {
        let _src = r#"
            let node f c = reset (0. -> pre n + 1.) every c where rec n = 0.0
        "#;
        // n unused; simpler: count inside reset.
        let src = r#"
            let node f c = n where rec n = reset (0. -> pre n + 1.) every c
        "#;
        let mut inst = det_instance(src, "f");
        let step = |i: &mut Instance, c: bool| float_out(&i.step(Value::Bool(c)).unwrap());
        assert_eq!(step(&mut inst, false), 0.0);
        assert_eq!(step(&mut inst, false), 1.0);
        assert_eq!(step(&mut inst, false), 2.0);
        assert_eq!(step(&mut inst, true), 0.0);
        assert_eq!(step(&mut inst, false), 1.0);
    }

    #[test]
    fn dsl_kalman_matches_closed_form() {
        let src = r#"
            let node kalman yobs = x where
              rec x = sample (gaussian ((0. -> pre x), (100. -> 1.)))
              and () = observe (gaussian (x, 1.), yobs)
            let node main y = infer 1 kalman y
        "#;
        let (interp, _) = build(
            src,
            Options {
                method: Method::StreamingDs,
                seed: 7,
                backend: ExecBackend::Interp,
            },
        );
        let mut inst = Instance::new(interp, "main").unwrap();
        let obs = [1.3, 0.7, -0.2, 2.5];
        let (mut km, mut kv) = (0.0f64, 100.0f64);
        for (t, &y) in obs.iter().enumerate() {
            if t > 0 {
                kv += 1.0;
            }
            let gain = kv / (kv + 1.0);
            km += gain * (y - km);
            kv *= 1.0 - gain;
            let out = inst.step(Value::Float(y)).unwrap();
            match out {
                MufValue::Posterior(p) => {
                    assert!(
                        (p.mean_float() - km).abs() < 1e-9,
                        "step {t}: {} vs {km}",
                        p.mean_float()
                    );
                }
                other => panic!("expected posterior, got {:?}", other.kind()),
            }
        }
    }

    #[test]
    fn probabilistic_op_outside_infer_errors() {
        let src = "let node f x = sample(gaussian(x, 1.))";
        let (interp, _) = build(
            src,
            Options {
                method: Method::StreamingDs,
                seed: 0,
                backend: ExecBackend::Interp,
            },
        );
        let mut inst = Instance::new(interp, "f").unwrap();
        let err = inst.step(Value::Float(0.0)).unwrap_err();
        assert!(err.message.contains("outside"));
    }
}
