//! Expansion of mode automata (§2.4) into the kernel.
//!
//! The paper: "hierarchical automata can be re-written using `present` and
//! `reset` [Colaço et al. 2006]". This pass performs that rewriting for the
//! equation-level automaton of Fig. 5's `task_bot`:
//!
//! ```text
//! automaton
//! | Go   -> do cmd = e1 and p = e2 until c then Task
//! | Task -> do cmd = e3 done
//! ```
//!
//! becomes (with a fresh state variable `st`, states numbered in
//! declaration order, the first initial):
//!
//! ```text
//! init st = 0
//! and st = present (last st = 0) -> (if c then 1 else 0)
//!          else present (last st = 1) -> 1 else last st
//! and cmd = present (last st = 0) -> (reset e1 every (not (last st = 0)))
//!           else present (last st = 1) -> (reset e3 every (not (last st = 1)))
//!           else last cmd
//! and p   = present (last st = 0) -> (reset e2 every (not (last st = 0)))
//!           else last p
//! and init p = nil
//! ```
//!
//! Transitions are *weak* (`until`): the running state's equations execute,
//! the conditions are inspected, and a firing transition changes the state
//! **for the next instant**; the entered state's equations restart because
//! the surrounding `reset` fires on entry (`last st ≠ i`). Variables that
//! some states do not define hold their previous value there (`last v`),
//! with a `nil` initial value — the initialization analysis then insists
//! that the *initial* state defines every variable that is read at the
//! first instant.

use crate::ast::{AutoState, Const, Eq, Expr, NodeDecl, OpName, Program};
use crate::error::{LangError, Stage};
use std::collections::{HashMap, HashSet};

/// Expands every automaton in the program.
///
/// # Errors
///
/// Unknown transition targets, duplicate state names, `init` equations
/// inside states, or empty automata.
pub fn expand_program(p: &Program) -> Result<Program, LangError> {
    let mut fresh = 0u32;
    let nodes = p
        .nodes
        .iter()
        .map(|n| {
            Ok(NodeDecl {
                name: n.name.clone(),
                param: n.param.clone(),
                body: expand_expr(&n.body, &mut fresh)?,
            })
        })
        .collect::<Result<_, LangError>>()?;
    Ok(Program { nodes })
}

fn expand_expr(e: &Expr, fresh: &mut u32) -> Result<Expr, LangError> {
    Ok(match e {
        Expr::At(inner, p) => Expr::at(expand_expr(inner, fresh)?, *p),
        Expr::Const(_) | Expr::Var(_) | Expr::Last(_) => e.clone(),
        Expr::Pair(a, b) => Expr::pair(expand_expr(a, fresh)?, expand_expr(b, fresh)?),
        Expr::Op(op, args) => Expr::Op(
            *op,
            args.iter()
                .map(|a| expand_expr(a, fresh))
                .collect::<Result<_, _>>()?,
        ),
        Expr::App(f, arg) => Expr::App(f.clone(), Box::new(expand_expr(arg, fresh)?)),
        Expr::Where { body, eqs } => Expr::Where {
            body: Box::new(expand_expr(body, fresh)?),
            eqs: expand_equations(eqs, fresh)?,
        },
        Expr::Present { cond, then, els } => Expr::Present {
            cond: Box::new(expand_expr(cond, fresh)?),
            then: Box::new(expand_expr(then, fresh)?),
            els: Box::new(expand_expr(els, fresh)?),
        },
        Expr::Reset { body, every } => Expr::Reset {
            body: Box::new(expand_expr(body, fresh)?),
            every: Box::new(expand_expr(every, fresh)?),
        },
        Expr::If { cond, then, els } => Expr::If {
            cond: Box::new(expand_expr(cond, fresh)?),
            then: Box::new(expand_expr(then, fresh)?),
            els: Box::new(expand_expr(els, fresh)?),
        },
        Expr::Sample(d) => Expr::Sample(Box::new(expand_expr(d, fresh)?)),
        Expr::Observe(d, v) => Expr::Observe(
            Box::new(expand_expr(d, fresh)?),
            Box::new(expand_expr(v, fresh)?),
        ),
        Expr::Factor(w) => Expr::Factor(Box::new(expand_expr(w, fresh)?)),
        Expr::ValueOp(x) => Expr::ValueOp(Box::new(expand_expr(x, fresh)?)),
        Expr::Infer {
            particles,
            node,
            arg,
        } => Expr::Infer {
            particles: *particles,
            node: node.clone(),
            arg: Box::new(expand_expr(arg, fresh)?),
        },
        Expr::Arrow(a, b) => Expr::Arrow(
            Box::new(expand_expr(a, fresh)?),
            Box::new(expand_expr(b, fresh)?),
        ),
        Expr::Fby(a, b) => Expr::Fby(
            Box::new(expand_expr(a, fresh)?),
            Box::new(expand_expr(b, fresh)?),
        ),
        Expr::Pre(x) => Expr::Pre(Box::new(expand_expr(x, fresh)?)),
    })
}

fn expand_equations(eqs: &[Eq], fresh: &mut u32) -> Result<Vec<Eq>, LangError> {
    let sibling_inits: HashSet<&str> = eqs
        .iter()
        .filter_map(|eq| match eq {
            Eq::Init { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    let mut out = Vec::new();
    for eq in eqs {
        match eq {
            Eq::Def { name, expr } => out.push(Eq::Def {
                name: name.clone(),
                expr: expand_expr(expr, fresh)?,
            }),
            Eq::Init { .. } => out.push(eq.clone()),
            Eq::Automaton { states } => {
                expand_automaton(states, &sibling_inits, fresh, &mut out)?;
            }
        }
    }
    Ok(out)
}

fn expand_automaton(
    states: &[AutoState],
    sibling_inits: &HashSet<&str>,
    fresh: &mut u32,
    out: &mut Vec<Eq>,
) -> Result<(), LangError> {
    if states.is_empty() {
        return Err(LangError::new(
            Stage::Parse,
            "automaton needs at least one state",
        ));
    }
    let index: HashMap<&str, usize> = states
        .iter()
        .enumerate()
        .map(|(i, s)| (s.name.as_str(), i))
        .collect();
    if index.len() != states.len() {
        return Err(LangError::new(
            Stage::Parse,
            "duplicate automaton state names",
        ));
    }
    *fresh += 1;
    let st = format!("_auto{fresh}_st");

    let active = |i: usize| -> Expr {
        Expr::Op(
            OpName::Eq,
            vec![Expr::Last(st.clone()), Expr::int(i as i64)],
        )
    };
    let entering = |i: usize| -> Expr { Expr::Op(OpName::Not, vec![active(i)]) };
    // A `present` chain over the active state, with `last st` fallback.
    let chain = |branches: Vec<Expr>, fallback: Expr| -> Expr {
        branches
            .into_iter()
            .enumerate()
            .rev()
            .fold(fallback, |els, (i, then)| Expr::Present {
                cond: Box::new(active(i)),
                then: Box::new(then),
                els: Box::new(els),
            })
    };

    // 1. The state equation.
    let mut transition_branches = Vec::with_capacity(states.len());
    for (i, state) in states.iter().enumerate() {
        let mut next = Expr::int(i as i64);
        for (cond, target) in state.transitions.iter().rev() {
            let Some(&target_idx) = index.get(target.as_str()) else {
                return Err(LangError::new(
                    Stage::Parse,
                    format!("automaton transition to unknown state `{target}`"),
                ));
            };
            next = Expr::If {
                cond: Box::new(expand_expr(cond, fresh)?),
                then: Box::new(Expr::int(target_idx as i64)),
                els: Box::new(next),
            };
        }
        transition_branches.push(next);
    }
    out.push(Eq::Init {
        name: st.clone(),
        value: Const::Int(0),
    });
    out.push(Eq::Def {
        name: st.clone(),
        expr: chain(transition_branches, Expr::Last(st.clone())),
    });

    // 2. One equation per defined variable.
    let mut var_order: Vec<String> = Vec::new();
    let mut defs: HashMap<&str, HashMap<usize, &Expr>> = HashMap::new();
    for (i, state) in states.iter().enumerate() {
        for eq in &state.eqs {
            match eq {
                Eq::Def { name, expr } => {
                    if !defs.contains_key(name.as_str()) {
                        var_order.push(name.clone());
                    }
                    let per_state = defs.entry(name.as_str()).or_default();
                    if per_state.insert(i, expr).is_some() {
                        return Err(LangError::new(
                            Stage::Parse,
                            format!("state `{}` defines `{name}` twice", state.name),
                        ));
                    }
                }
                Eq::Init { name, .. } => {
                    return Err(LangError::new(
                        Stage::Parse,
                        format!(
                            "`init {name}` inside an automaton state; initialize at the \
                             enclosing `where` instead (state bodies restart via reset)"
                        ),
                    ));
                }
                Eq::Automaton { .. } => {
                    return Err(LangError::new(
                        Stage::Parse,
                        "nested automata are not supported directly; move the inner \
                         automaton into its own node",
                    ));
                }
            }
        }
    }

    for v in &var_order {
        let per_state = &defs[v.as_str()];
        let total = per_state.len() == states.len();
        let mut branches = Vec::with_capacity(states.len());
        for i in 0..states.len() {
            branches.push(match per_state.get(&i) {
                Some(expr) => Expr::Reset {
                    body: Box::new(expand_expr(expr, fresh)?),
                    every: Box::new(entering(i)),
                },
                None => Expr::Last(v.clone()),
            });
        }
        // For totally-defined variables the last state's branch doubles as
        // the (unreachable) fallback, so no `last v` read — and hence no
        // `init` — is needed.
        let expr = if total {
            let fallback = branches.pop().expect("at least one state");
            chain(branches, fallback)
        } else {
            chain(branches, Expr::Last(v.clone()))
        };
        out.push(Eq::Def {
            name: v.clone(),
            expr,
        });
        if !total && !sibling_inits.contains(v.as_str()) {
            out.push(Eq::Init {
                name: v.clone(),
                value: Const::Nil,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn expand(src: &str) -> Result<Program, LangError> {
        expand_program(&parse_program(src).unwrap())
    }

    const TWO_STATE: &str = r#"
        let node f x = cmd where
          rec automaton
              | Go -> do cmd = 1. until x > 3. then Stop
              | Stop -> do cmd = 0. done
    "#;

    #[test]
    fn expands_to_state_variable_and_present_chains() {
        let p = expand(TWO_STATE).unwrap();
        match &p.nodes[0].body {
            Expr::Where { eqs, .. } => {
                let names: Vec<&str> = eqs.iter().map(|q| q.name()).collect();
                // init st, st, cmd.
                assert_eq!(names.len(), 3, "{names:?}");
                assert!(names[0].contains("_st"));
                assert_eq!(names[2], "cmd");
                assert!(matches!(
                    &eqs[2],
                    Eq::Def {
                        expr: Expr::Present { .. },
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_target_rejected() {
        let err =
            expand("let node f x = c where rec automaton | A -> do c = 1. until x > 0. then B")
                .unwrap_err();
        assert!(err.message.contains("unknown state"));
    }

    #[test]
    fn duplicate_states_rejected() {
        let err = expand(
            "let node f x = c where rec automaton | A -> do c = 1. done | A -> do c = 2. done",
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn init_inside_state_rejected() {
        let err =
            expand("let node f x = c where rec automaton | A -> do init c = 1. and c = 2. done")
                .unwrap_err();
        assert!(err.message.contains("init"));
    }

    #[test]
    fn partially_defined_variables_get_nil_inits() {
        let src = r#"
            let node f x = cmd where
              rec automaton
                  | Go -> do cmd = 1. and aux = x until aux > 3. then Stop
                  | Stop -> do cmd = 0. done
        "#;
        let p = expand(src).unwrap();
        match &p.nodes[0].body {
            Expr::Where { eqs, .. } => {
                assert!(eqs
                    .iter()
                    .any(|q| matches!(q, Eq::Init { name, value: Const::Nil } if name == "aux")));
            }
            other => panic!("{other:?}"),
        }
    }
}
