//! Abstract syntax of the ProbZelus kernel language (Fig. 6), plus the
//! derived operators the paper desugars into the kernel (`->`, `pre`,
//! `fby`): those are removed by [`crate::transform`] before kind checking,
//! scheduling, and compilation.
//!
//! Source spans are carried by the transparent [`Expr::At`] wrapper, which
//! the parser inserts around the expressions diagnostics most often point
//! at (effectful operators, node applications, and equation right-hand
//! sides). Every pass either threads the position into its errors or
//! passes straight through it; [`Expr::peel`] and [`Expr::strip_spans`]
//! recover the span-free structure.

use crate::error::Pos;

/// Literal constants.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// `()`.
    Unit,
    /// Booleans.
    Bool(bool),
    /// Integer literals.
    Int(i64),
    /// Float literals.
    Float(f64),
    /// The undefined value used internally to initialize the state of a
    /// desugared `pre`: reading it is an initialization error that the
    /// initialization analysis rules out for accepted programs.
    Nil,
}

impl std::fmt::Display for Const {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Const::Unit => write!(f, "()"),
            Const::Bool(b) => write!(f, "{b}"),
            Const::Int(n) => write!(f, "{n}"),
            Const::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Const::Nil => write!(f, "nil"),
        }
    }
}

/// Built-in external operators (`op(e)` of the kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpName {
    /// Addition (`+`, `+.`).
    Add,
    /// Subtraction (`-`, `-.`).
    Sub,
    /// Multiplication (`*`, `*.`).
    Mul,
    /// Division (`/`, `/.`).
    Div,
    /// Arithmetic negation.
    Neg,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `=` (structural).
    Eq,
    /// `<>`.
    Ne,
    /// `&&` (strict).
    And,
    /// `||` (strict).
    Or,
    /// `not`.
    Not,
    /// First projection.
    Fst,
    /// Second projection.
    Snd,
    /// `exp`.
    Exp,
    /// Natural logarithm.
    Log,
    /// `sqrt`.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Binary minimum.
    Min,
    /// Binary maximum.
    Max,
    /// Integer to float conversion.
    FloatOfInt,
    /// Posterior mean (`mean_float(d)` on an inferred distribution).
    MeanFloat,
    /// Posterior variance.
    VarianceFloat,
    /// Posterior interval probability `prob(d, lo, hi)` — the paper's
    /// `probability(p_dist, target, eps)` is `prob(d, target - eps,
    /// target + eps)`.
    Prob,
    /// Draw one sample from an inferred posterior (driver-level).
    DrawDist,
    /// Gaussian distribution constructor (mean, variance).
    Gaussian,
    /// Beta distribution constructor.
    Beta,
    /// Bernoulli distribution constructor.
    Bernoulli,
    /// Uniform distribution constructor.
    Uniform,
    /// Gamma distribution constructor.
    Gamma,
    /// Poisson distribution constructor.
    Poisson,
    /// Exponential distribution constructor.
    Exponential,
    /// Binomial distribution constructor.
    Binomial,
    /// Dirac distribution constructor.
    Dirac,
}

impl OpName {
    /// Number of arguments the operator takes.
    pub fn arity(&self) -> usize {
        use OpName::*;
        match self {
            Neg | Not | Fst | Snd | Exp | Log | Sqrt | Abs | FloatOfInt | MeanFloat
            | VarianceFloat | DrawDist | Bernoulli | Poisson | Exponential | Dirac => 1,
            Add | Sub | Mul | Div | Lt | Le | Gt | Ge | Eq | Ne | And | Or | Min | Max
            | Gaussian | Beta | Uniform | Gamma | Binomial => 2,
            Prob => 3,
        }
    }

    /// The operator invocable by name in source code (e.g. `exp(x)`), if
    /// any. Returns the name it is known under.
    pub fn from_ident(name: &str) -> Option<OpName> {
        use OpName::*;
        Some(match name {
            "exp" => Exp,
            "log" => Log,
            "sqrt" => Sqrt,
            "abs" => Abs,
            "min" => Min,
            "max" => Max,
            "float_of_int" => FloatOfInt,
            "fst" => Fst,
            "snd" => Snd,
            "not" => Not,
            "mean_float" => MeanFloat,
            "variance_float" => VarianceFloat,
            "prob" => Prob,
            "draw" => DrawDist,
            "gaussian" => Gaussian,
            "beta" => Beta,
            "bernoulli" => Bernoulli,
            "uniform" => Uniform,
            "gamma" => Gamma,
            "poisson" => Poisson,
            "exponential" => Exponential,
            "binomial" => Binomial,
            "dirac" => Dirac,
            _ => return None,
        })
    }

    /// Rendering used by the pretty-printer for identifier-style operators.
    pub fn ident(&self) -> &'static str {
        use OpName::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Neg => "-",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Eq => "=",
            Ne => "<>",
            And => "&&",
            Or => "||",
            Not => "not",
            Fst => "fst",
            Snd => "snd",
            Exp => "exp",
            Log => "log",
            Sqrt => "sqrt",
            Abs => "abs",
            Min => "min",
            Max => "max",
            FloatOfInt => "float_of_int",
            MeanFloat => "mean_float",
            VarianceFloat => "variance_float",
            Prob => "prob",
            DrawDist => "draw",
            Gaussian => "gaussian",
            Beta => "beta",
            Bernoulli => "bernoulli",
            Uniform => "uniform",
            Gamma => "gamma",
            Poisson => "poisson",
            Exponential => "exponential",
            Binomial => "binomial",
            Dirac => "dirac",
        }
    }
}

/// Expressions (Fig. 6 plus derived forms).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Constant.
    Const(Const),
    /// Variable.
    Var(String),
    /// Pair `(e1, e2)` (tuples nest to the right).
    Pair(Box<Expr>, Box<Expr>),
    /// External operator application.
    Op(OpName, Vec<Expr>),
    /// Node application `f(e)`.
    App(String, Box<Expr>),
    /// `last x`.
    Last(String),
    /// `e where rec E`.
    Where {
        /// Result expression.
        body: Box<Expr>,
        /// The mutually recursive equations.
        eqs: Vec<Eq>,
    },
    /// `present e -> e1 else e2` (lazy activation condition).
    Present {
        /// Condition.
        cond: Box<Expr>,
        /// Branch executed when the condition is true.
        then: Box<Expr>,
        /// Branch executed otherwise.
        els: Box<Expr>,
    },
    /// `reset e1 every e2`.
    Reset {
        /// Body whose state is re-initialized.
        body: Box<Expr>,
        /// Reset condition.
        every: Box<Expr>,
    },
    /// Strict conditional (an external operator per §3.1, but kept as a
    /// node in the tree because its compilation selects on a value).
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then-value (always computed).
        then: Box<Expr>,
        /// Else-value (always computed).
        els: Box<Expr>,
    },
    /// `sample(e)`.
    Sample(Box<Expr>),
    /// `observe(e1, e2)`.
    Observe(Box<Expr>, Box<Expr>),
    /// `factor(e)`.
    Factor(Box<Expr>),
    /// `value(e)`: force realization of a delayed variable (§5.3).
    ValueOp(Box<Expr>),
    /// `infer n f (e)`: run `n` particles of node `f` over the
    /// deterministic input stream `e`.
    Infer {
        /// Particle count.
        particles: usize,
        /// Probabilistic model node name.
        node: String,
        /// Deterministic input expression.
        arg: Box<Expr>,
    },
    /// Derived: `e1 -> e2` (removed by desugaring).
    Arrow(Box<Expr>, Box<Expr>),
    /// Derived: `pre e` (removed by desugaring).
    Pre(Box<Expr>),
    /// Derived: `e1 fby e2` ≡ `e1 -> pre e2` (removed by desugaring).
    Fby(Box<Expr>, Box<Expr>),
    /// Span annotation: semantically transparent, carries the source
    /// position of the wrapped expression for diagnostics.
    At(Box<Expr>, Pos),
}

impl Expr {
    /// Builds a variable expression.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Builds a pair.
    pub fn pair(a: Expr, b: Expr) -> Expr {
        Expr::Pair(Box::new(a), Box::new(b))
    }

    /// Float literal.
    pub fn float(x: f64) -> Expr {
        Expr::Const(Const::Float(x))
    }

    /// Int literal.
    pub fn int(n: i64) -> Expr {
        Expr::Const(Const::Int(n))
    }

    /// Wraps an expression with a source span.
    pub fn at(e: Expr, pos: Pos) -> Expr {
        Expr::At(Box::new(e), pos)
    }

    /// The underlying expression with any [`Expr::At`] wrappers removed
    /// (outermost only; sub-expressions keep their spans).
    pub fn peel(&self) -> &Expr {
        let mut e = self;
        while let Expr::At(inner, _) = e {
            e = inner;
        }
        e
    }

    /// The outermost span annotation, if any.
    pub fn span(&self) -> Option<Pos> {
        match self {
            Expr::At(_, p) => Some(*p),
            _ => None,
        }
    }

    /// A structurally identical copy with every [`Expr::At`] removed.
    /// Round-trip tests compare span-free trees with this.
    pub fn strip_spans(&self) -> Expr {
        fn b(e: &Expr) -> Box<Expr> {
            Box::new(e.strip_spans())
        }
        match self {
            Expr::At(inner, _) => inner.strip_spans(),
            Expr::Const(c) => Expr::Const(c.clone()),
            Expr::Var(x) => Expr::Var(x.clone()),
            Expr::Pair(a, x) => Expr::Pair(b(a), b(x)),
            Expr::Op(op, args) => Expr::Op(*op, args.iter().map(Expr::strip_spans).collect()),
            Expr::App(f, arg) => Expr::App(f.clone(), b(arg)),
            Expr::Last(x) => Expr::Last(x.clone()),
            Expr::Where { body, eqs } => Expr::Where {
                body: b(body),
                eqs: eqs.iter().map(Eq::strip_spans).collect(),
            },
            Expr::Present { cond, then, els } => Expr::Present {
                cond: b(cond),
                then: b(then),
                els: b(els),
            },
            Expr::Reset { body, every } => Expr::Reset {
                body: b(body),
                every: b(every),
            },
            Expr::If { cond, then, els } => Expr::If {
                cond: b(cond),
                then: b(then),
                els: b(els),
            },
            Expr::Sample(d) => Expr::Sample(b(d)),
            Expr::Observe(d, v) => Expr::Observe(b(d), b(v)),
            Expr::Factor(w) => Expr::Factor(b(w)),
            Expr::ValueOp(x) => Expr::ValueOp(b(x)),
            Expr::Infer {
                particles,
                node,
                arg,
            } => Expr::Infer {
                particles: *particles,
                node: node.clone(),
                arg: b(arg),
            },
            Expr::Arrow(a, x) => Expr::Arrow(b(a), b(x)),
            Expr::Pre(x) => Expr::Pre(b(x)),
            Expr::Fby(a, x) => Expr::Fby(b(a), b(x)),
        }
    }
}

/// Equations (`E` of Fig. 6, plus the derived `automaton` of §2.4, which
/// [`crate::automata`] rewrites into `present`/`reset` before the kernel
/// passes run). Parallel composition is a `Vec<Eq>`.
#[derive(Debug, Clone, PartialEq)]
pub enum Eq {
    /// `x = e`.
    Def {
        /// Defined variable.
        name: String,
        /// Defining expression.
        expr: Expr,
    },
    /// `init x = c`.
    Init {
        /// Initialized variable.
        name: String,
        /// Initial constant.
        value: Const,
    },
    /// `automaton | S1 -> do E until c then S2 | … ` — a mode automaton
    /// defining the union of the variables its states define. Transitions
    /// are weak (`until`): they take effect at the next instant, and the
    /// entered state's equations restart from their initial state.
    Automaton {
        /// The states, in declaration order (the first is initial).
        states: Vec<AutoState>,
    },
}

/// One state of a mode automaton.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoState {
    /// State name.
    pub name: String,
    /// The equations active in this state.
    pub eqs: Vec<Eq>,
    /// Weak transitions `until cond then target`, tried in order.
    pub transitions: Vec<(Expr, String)>,
}

impl Eq {
    /// A copy with every [`Expr::At`] removed from contained expressions.
    pub fn strip_spans(&self) -> Eq {
        match self {
            Eq::Def { name, expr } => Eq::Def {
                name: name.clone(),
                expr: expr.strip_spans(),
            },
            Eq::Init { name, value } => Eq::Init {
                name: name.clone(),
                value: value.clone(),
            },
            Eq::Automaton { states } => Eq::Automaton {
                states: states
                    .iter()
                    .map(|s| AutoState {
                        name: s.name.clone(),
                        eqs: s.eqs.iter().map(Eq::strip_spans).collect(),
                        transitions: s
                            .transitions
                            .iter()
                            .map(|(c, t)| (c.strip_spans(), t.clone()))
                            .collect(),
                    })
                    .collect(),
            },
        }
    }

    /// The variable this equation defines or initializes.
    ///
    /// # Panics
    ///
    /// Panics on an `automaton` equation, which defines several variables —
    /// those must be expanded by [`crate::automata`] first.
    pub fn name(&self) -> &str {
        match self {
            Eq::Def { name, .. } | Eq::Init { name, .. } => name,
            Eq::Automaton { .. } => {
                panic!("automaton equations define several variables; expand them first")
            }
        }
    }
}

/// Formal parameter patterns of node declarations.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// `x`.
    Var(String),
    /// `()`.
    Unit,
    /// `(p1, p2)` (tuples nest right).
    Pair(Box<Pattern>, Box<Pattern>),
}

impl Pattern {
    /// All variables bound by the pattern, left to right.
    pub fn vars(&self) -> Vec<&str> {
        match self {
            Pattern::Var(x) => vec![x],
            Pattern::Unit => vec![],
            Pattern::Pair(a, b) => {
                let mut v = a.vars();
                v.extend(b.vars());
                v
            }
        }
    }
}

/// A stream function declaration `let node f p = e`.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeDecl {
    /// Node name.
    pub name: String,
    /// Formal parameter.
    pub param: Pattern,
    /// Body.
    pub body: Expr,
}

/// A program: a sequence of node declarations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Declarations, in source order.
    pub nodes: Vec<NodeDecl>,
}

impl Program {
    /// Looks up a node by name.
    pub fn node(&self, name: &str) -> Option<&NodeDecl> {
        self.nodes.iter().find(|n| n.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_arities_match_identifier_lookup() {
        for name in [
            "exp",
            "log",
            "sqrt",
            "abs",
            "min",
            "max",
            "fst",
            "snd",
            "gaussian",
            "beta",
            "bernoulli",
            "uniform",
            "gamma",
            "poisson",
            "binomial",
            "dirac",
            "prob",
            "mean_float",
        ] {
            let op = OpName::from_ident(name).unwrap();
            assert!(op.arity() >= 1 && op.arity() <= 3);
        }
        assert!(OpName::from_ident("nonexistent").is_none());
    }

    #[test]
    fn pattern_vars_in_order() {
        let p = Pattern::Pair(
            Box::new(Pattern::Var("a".into())),
            Box::new(Pattern::Pair(
                Box::new(Pattern::Var("b".into())),
                Box::new(Pattern::Unit),
            )),
        );
        assert_eq!(p.vars(), vec!["a", "b"]);
    }

    #[test]
    fn const_display() {
        assert_eq!(Const::Float(2.0).to_string(), "2.0");
        assert_eq!(Const::Float(2.5).to_string(), "2.5");
        assert_eq!(Const::Int(3).to_string(), "3");
        assert_eq!(Const::Unit.to_string(), "()");
    }

    #[test]
    fn program_lookup() {
        let prog = Program {
            nodes: vec![NodeDecl {
                name: "f".into(),
                param: Pattern::Var("x".into()),
                body: Expr::var("x"),
            }],
        };
        assert!(prog.node("f").is_some());
        assert!(prog.node("g").is_none());
    }
}
