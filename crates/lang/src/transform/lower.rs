//! Lowering µF transition closures to the flat instruction tape of
//! [`crate::tape`].
//!
//! Lowering is a compile-time abstract interpretation of the closure
//! body: every expression evaluates to a [`Place`] — a register, a
//! compile-time tuple of places (tuples stay unpacked until something
//! forces a value), or a statically-known global closure. Beta-redexes
//! and calls to global closures are inlined, so the per-particle tape for
//! a compiled node is one straight-line instruction stream with jumps
//! only for `if`. Names are resolved entirely at lowering time: lexical
//! binders become places, captured-environment names become registered
//! env slots (refreshed when the engine rewrites its closure slot), and
//! globals are resolved once — the steady state does zero name lookups
//! and zero `Env` operations.
//!
//! Lowering is conservative: any construct whose tape semantics could
//! diverge from the interpreter (escaping closures, nested inference,
//! arity surprises) aborts with a reason, and the engine simply keeps
//! interpreting. The evaluation order of emitted ops mirrors the
//! interpreter's recursion exactly, so effects (sampling, observation,
//! RNG consumption) happen in the same sequence bit-for-bit.

use crate::ast::OpName;
use crate::eval::{const_value, Interp};
use crate::muf::{Closure, Env, MufExpr, MufPat, MufValue};
use crate::tape::{split_state, Op, OutSpec, Reg, StateShape, TapeProgram};
use std::collections::HashSet;
use std::rc::Rc;

/// Inlining recursion limit: deeper call chains go through
/// [`Op::CallSummary`] instead (compiled programs are non-recursive, so
/// this is a safety net for hand-written µF).
const MAX_INLINE_DEPTH: u32 = 64;
/// Hard cap on tape length; beyond it the whole engine falls back.
const MAX_OPS: usize = 50_000;

type LowerResult<T> = Result<T, String>;

/// Compile-time value descriptor.
#[derive(Clone)]
enum Place {
    /// Lives in a register at runtime.
    Reg(Reg),
    /// A tuple kept unpacked in element places.
    Tuple(Vec<Place>),
    /// A statically-known closure (from the immutable globals).
    Global(MufValue),
}

enum ScopeEntry {
    Bind(String, Place),
    /// Lexical barrier at an inlined global's body: names beyond it
    /// resolve through globals only (inlining requires the callee's
    /// captured environment to be empty).
    Boundary,
}

struct Lower<'a> {
    interp: &'a Rc<Interp>,
    /// The lowered closure's captured environment (names only; values are
    /// re-read into env-slot registers at runtime).
    captured: &'a Env,
    ops: Vec<Op>,
    consts: Vec<Op>,
    scope: Vec<ScopeEntry>,
    env_slots: Vec<(String, Reg)>,
    /// Globals already interned into the constant pool: `(name, reg)`.
    global_regs: Vec<(String, Reg)>,
    reg_names: Vec<String>,
    next_reg: Reg,
    depth: u32,
    unit: Option<Reg>,
}

impl Lower<'_> {
    fn fresh(&mut self, name: &str) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        self.reg_names.push(name.to_string());
        r
    }

    fn emit(&mut self, op: Op) {
        self.ops.push(op);
    }

    fn const_reg(&mut self, v: MufValue, name: &str) -> Reg {
        let r = self.fresh(name);
        self.consts.push(Op::Const { dst: r, v });
        r
    }

    fn unit_reg(&mut self) -> Reg {
        if let Some(r) = self.unit {
            return r;
        }
        let r = self.const_reg(MufValue::unit(), "unit");
        self.unit = Some(r);
        r
    }

    /// Name resolution, mirroring the interpreter's order: lexical scope,
    /// then the closure's captured environment, then globals.
    fn resolve(&mut self, name: &str) -> LowerResult<Place> {
        let mut hit_boundary = false;
        let mut found: Option<Place> = None;
        for e in self.scope.iter().rev() {
            match e {
                ScopeEntry::Bind(n, p) if n == name => {
                    found = Some(p.clone());
                    break;
                }
                ScopeEntry::Boundary => {
                    hit_boundary = true;
                    break;
                }
                ScopeEntry::Bind(..) => {}
            }
        }
        if let Some(p) = found {
            return Ok(p);
        }
        if !hit_boundary && self.captured.lookup(name).is_some() {
            if let Some((_, r)) = self.env_slots.iter().find(|(n, _)| n == name) {
                return Ok(Place::Reg(*r));
            }
            let r = self.fresh(name);
            self.env_slots.push((name.to_string(), r));
            return Ok(Place::Reg(r));
        }
        match self.interp.global(name) {
            Some(v @ MufValue::Closure(_)) => Ok(Place::Global(v)),
            Some(v) => {
                if let Some((_, r)) = self.global_regs.iter().find(|(n, _)| n == name) {
                    return Ok(Place::Reg(*r));
                }
                let r = self.const_reg(v, name);
                self.global_regs.push((name.to_string(), r));
                Ok(Place::Reg(r))
            }
            None => Err(format!("unbound variable `{name}`")),
        }
    }

    /// Forces a place into a single register (emitting `MkTuple` for
    /// unpacked tuples, interning global closures as constants).
    fn materialize(&mut self, p: &Place, name: &str) -> LowerResult<Reg> {
        match p {
            Place::Reg(r) => Ok(*r),
            Place::Tuple(items) => {
                let regs: Vec<Reg> = items
                    .iter()
                    .map(|i| self.materialize(i, name))
                    .collect::<Result<_, _>>()?;
                let dst = self.fresh(name);
                self.emit(Op::MkTuple { dst, items: regs });
                Ok(dst)
            }
            Place::Global(v) => Ok(self.const_reg(v.clone(), name)),
        }
    }

    fn move_into(&mut self, dst: Reg, p: &Place) -> LowerResult<()> {
        let src = self.materialize(p, "join")?;
        if src != dst {
            self.emit(Op::Move { dst, src });
        }
        Ok(())
    }

    /// Compile-time pattern binding. Tuple patterns against tuple places
    /// bind element-wise with zero ops; against a register they emit
    /// runtime `Proj`s (whose semantics mirror the interpreter's
    /// `bind_pattern`, including `nil` spreading and core pairs).
    fn bind_pat(&mut self, pat: &MufPat, place: Place) -> LowerResult<()> {
        match (pat, place) {
            (MufPat::Wildcard, _) | (MufPat::Unit, _) => Ok(()),
            (MufPat::Var(x), p) => {
                self.scope.push(ScopeEntry::Bind(x.clone(), p));
                Ok(())
            }
            (MufPat::Tuple(ps), Place::Tuple(items)) => {
                if ps.len() != items.len() {
                    return Err(format!(
                        "tuple arity mismatch: pattern {} vs value {}",
                        ps.len(),
                        items.len()
                    ));
                }
                for (p, i) in ps.iter().zip(items) {
                    self.bind_pat(p, i)?;
                }
                Ok(())
            }
            (MufPat::Tuple(ps), Place::Reg(src)) => {
                let arity = ps.len() as u32;
                for (i, p) in ps.iter().enumerate() {
                    let dst = self.fresh(&pat_name(p));
                    self.emit(Op::Proj {
                        dst,
                        src,
                        idx: i as u32,
                        arity,
                    });
                    self.bind_pat(p, Place::Reg(dst))?;
                }
                Ok(())
            }
            (MufPat::Tuple(_), Place::Global(_)) => Err("cannot destructure a closure".into()),
        }
    }

    fn lower(&mut self, e: &MufExpr) -> LowerResult<Place> {
        if self.ops.len() > MAX_OPS {
            return Err(format!("op budget exceeded ({MAX_OPS})"));
        }
        match e {
            MufExpr::Const(c) => Ok(Place::Reg(self.const_reg(const_value(c), "const"))),
            MufExpr::Var(x) => self.resolve(x),
            MufExpr::Tuple(xs) => Ok(Place::Tuple(
                xs.iter().map(|x| self.lower(x)).collect::<Result<_, _>>()?,
            )),
            MufExpr::Op(op, args) => self.lower_op(*op, args),
            MufExpr::If(c, t, f) => {
                let pc = self.lower(c)?;
                let cond = self.materialize(&pc, "cond")?;
                let jfalse = self.ops.len();
                self.emit(Op::JmpIfNot { cond, target: 0 });
                let dst = self.fresh("if");
                let save = self.scope.len();
                let pt = self.lower(t)?;
                self.move_into(dst, &pt)?;
                self.scope.truncate(save);
                let jend = self.ops.len();
                self.emit(Op::Jmp { target: 0 });
                let else_at = self.ops.len() as u32;
                self.patch(jfalse, else_at);
                let pf = self.lower(f)?;
                self.move_into(dst, &pf)?;
                self.scope.truncate(save);
                let end_at = self.ops.len() as u32;
                self.patch(jend, end_at);
                Ok(Place::Reg(dst))
            }
            MufExpr::Select(c, t, f) => {
                let pc = self.lower(c)?;
                let pt = self.lower(t)?;
                let pf = self.lower(f)?;
                let cond = self.materialize(&pc, "cond")?;
                let t = self.materialize(&pt, "then")?;
                let f = self.materialize(&pf, "else")?;
                let dst = self.fresh("select");
                self.emit(Op::Select { dst, cond, t, f });
                Ok(Place::Reg(dst))
            }
            MufExpr::App(f, a) => self.lower_app(f, a),
            MufExpr::Let(pat, bound, body) => {
                let pb = self.lower(bound)?;
                let save = self.scope.len();
                self.bind_pat(pat, pb)?;
                let out = self.lower(body);
                self.scope.truncate(save);
                out
            }
            MufExpr::Fun(..) => Err("a closure escapes to a value position".into()),
            MufExpr::Sample(d) => {
                let pd = self.lower(d)?;
                let dist = self.materialize(&pd, "dist")?;
                let dst = self.fresh("sample");
                self.emit(Op::Sample { dst, dist });
                Ok(Place::Reg(dst))
            }
            MufExpr::Observe(d, o) => {
                let pd = self.lower(d)?;
                let dist = self.materialize(&pd, "dist")?;
                let po = self.lower(o)?;
                let obs = self.materialize(&po, "obs")?;
                self.emit(Op::Observe { dist, obs });
                Ok(Place::Reg(self.unit_reg()))
            }
            MufExpr::Factor(w) => {
                let pw = self.lower(w)?;
                let w = self.materialize(&pw, "weight")?;
                self.emit(Op::Factor { w });
                Ok(Place::Reg(self.unit_reg()))
            }
            MufExpr::ValueOp(x) => {
                let px = self.lower(x)?;
                let src = self.materialize(&px, "value")?;
                let dst = self.fresh("value");
                self.emit(Op::Value { dst, src });
                Ok(Place::Reg(dst))
            }
            MufExpr::Freshen(inner) => {
                let p = self.lower(inner)?;
                self.freshen_place(&p)
            }
            MufExpr::Infer { .. } | MufExpr::EngineInit { .. } => {
                Err("nested inference in particle code".into())
            }
        }
    }

    fn lower_op(&mut self, op: OpName, args: &[MufExpr]) -> LowerResult<Place> {
        let places: Vec<Place> = args
            .iter()
            .map(|a| self.lower(a))
            .collect::<Result<_, _>>()?;
        // Projections on syntactic tuples — the interpreter's tuple fast
        // path, resolved at lowering time (a tuple place is never `nil`
        // itself, so the poison check cannot fire first).
        if matches!(op, OpName::Fst | OpName::Snd) && places.len() == 1 {
            if let Place::Tuple(items) = &places[0] {
                return match (op, items.len()) {
                    (OpName::Fst, n) if n >= 1 => Ok(items[0].clone()),
                    (OpName::Snd, 2) => Ok(items[1].clone()),
                    (OpName::Snd, n) if n > 2 => Ok(Place::Tuple(items[1..].to_vec())),
                    _ => Err("projection from empty tuple".into()),
                };
            }
        }
        let regs: Vec<Reg> = places
            .iter()
            .map(|p| self.materialize(p, "arg"))
            .collect::<Result<_, _>>()?;
        let dst = self.fresh(&format!("{op:?}").to_lowercase());
        match regs.as_slice() {
            [a] => self.emit(Op::UnOp { op, dst, a: *a }),
            [a, b] => self.emit(Op::BinOp {
                op,
                dst,
                a: *a,
                b: *b,
            }),
            [a, b, c] => self.emit(Op::TernOp {
                op,
                dst,
                a: *a,
                b: *b,
                c: *c,
            }),
            _ => return Err(format!("operator {op:?} with {} arguments", regs.len())),
        }
        Ok(Place::Reg(dst))
    }

    fn lower_app(&mut self, f: &MufExpr, a: &MufExpr) -> LowerResult<Place> {
        // Beta-redex: bind the argument's places straight into scope (the
        // closure would capture exactly the current environment, so the
        // binding is lexically transparent).
        if let MufExpr::Fun(pat, body) = f {
            let pa = self.lower(a)?;
            let save = self.scope.len();
            self.bind_pat(pat, pa)?;
            let out = self.lower(body);
            self.scope.truncate(save);
            return out;
        }
        let pf = self.lower(f)?;
        let pa = self.lower(a)?;
        match pf {
            Place::Global(v) => self.inline_or_call(v, pa),
            Place::Reg(r) => {
                let arg = self.materialize(&pa, "arg")?;
                let dst = self.fresh("eval");
                self.emit(Op::Eval { dst, f: r, arg });
                Ok(Place::Reg(dst))
            }
            Place::Tuple(_) => Err("cannot apply a tuple".into()),
        }
    }

    fn inline_or_call(&mut self, v: MufValue, pa: Place) -> LowerResult<Place> {
        let MufValue::Closure(c) = &v else {
            return Err(format!("cannot apply a {}", v.kind()));
        };
        if c.env.is_empty() && self.depth < MAX_INLINE_DEPTH {
            let (pat, body) = (c.pat.clone(), Rc::clone(&c.body));
            self.depth += 1;
            let save = self.scope.len();
            self.scope.push(ScopeEntry::Boundary);
            let out = self.bind_pat(&pat, pa).and_then(|()| self.lower(&body));
            self.scope.truncate(save);
            self.depth -= 1;
            out
        } else {
            // Not inlinable (captured environment, or too deep): call
            // back into the interpreter for this callee only. The closure
            // value is stable — it came from the immutable globals.
            let arg = self.materialize(&pa, "arg")?;
            let dst = self.fresh("call");
            self.emit(Op::CallSummary { dst, f: v, arg });
            Ok(Place::Reg(dst))
        }
    }

    fn freshen_place(&mut self, p: &Place) -> LowerResult<Place> {
        match p {
            Place::Reg(src) => {
                let dst = self.fresh("fresh");
                self.emit(Op::Freshen { dst, src: *src });
                Ok(Place::Reg(dst))
            }
            Place::Tuple(items) => Ok(Place::Tuple(
                items
                    .iter()
                    .map(|i| self.freshen_place(i))
                    .collect::<Result<_, _>>()?,
            )),
            // Closures deep-clone to themselves.
            Place::Global(v) => Ok(Place::Global(v.clone())),
        }
    }

    fn patch(&mut self, at: usize, target: u32) {
        if let Op::Jmp { target: t } | Op::JmpIfNot { target: t, .. } = &mut self.ops[at] {
            *t = target;
        }
    }

    /// Builds the state's register places, mirroring the pattern shape
    /// (leaf registers double as the state-in registers).
    fn place_of_shape(&mut self, shape: &StateShape, pat: Option<&MufPat>) -> (Place, Vec<Reg>) {
        match shape {
            StateShape::Leaf => {
                let name = match pat {
                    Some(MufPat::Var(x)) => x.clone(),
                    _ => "s".into(),
                };
                let r = self.fresh(&name);
                (Place::Reg(r), vec![r])
            }
            StateShape::Node(children) => {
                let pats = match pat {
                    Some(MufPat::Tuple(ps)) => Some(ps),
                    _ => None,
                };
                let mut places = Vec::with_capacity(children.len());
                let mut regs = Vec::new();
                for (i, ch) in children.iter().enumerate() {
                    let (p, rs) = self.place_of_shape(ch, pats.and_then(|ps| ps.get(i)));
                    places.push(p);
                    regs.extend(rs);
                }
                (Place::Tuple(places), regs)
            }
        }
    }

    fn out_spec(&mut self, p: &Place) -> LowerResult<OutSpec> {
        match p {
            Place::Reg(r) => Ok(OutSpec::Reg(*r)),
            Place::Tuple(items) => Ok(OutSpec::Tuple(
                items
                    .iter()
                    .map(|i| self.out_spec(i))
                    .collect::<Result<_, _>>()?,
            )),
            Place::Global(_) => Err("a closure reaches the output".into()),
        }
    }

    /// Assigns the successor-state place to flat out-registers following
    /// the state shape (runtime `Proj`s when a subtree is register-held).
    fn bind_state_out(&mut self, p: &Place, shape: &StateShape) -> LowerResult<Vec<Reg>> {
        match (p, shape) {
            (_, StateShape::Leaf) => Ok(vec![self.materialize(p, "state")?]),
            (Place::Tuple(items), StateShape::Node(children)) => {
                if items.len() != children.len() {
                    return Err(format!(
                        "successor state arity {} vs shape {}",
                        items.len(),
                        children.len()
                    ));
                }
                let mut out = Vec::new();
                for (i, ch) in items.iter().zip(children) {
                    out.extend(self.bind_state_out(i, ch)?);
                }
                Ok(out)
            }
            (Place::Reg(src), StateShape::Node(children)) => {
                let arity = children.len() as u32;
                let mut out = Vec::new();
                for (i, ch) in children.iter().enumerate() {
                    let dst = self.fresh("state");
                    self.emit(Op::Proj {
                        dst,
                        src: *src,
                        idx: i as u32,
                        arity,
                    });
                    out.extend(self.bind_state_out(&Place::Reg(dst), ch)?);
                }
                Ok(out)
            }
            (Place::Global(_), StateShape::Node(_)) => {
                Err("a closure reaches a state tuple position".into())
            }
        }
    }
}

fn pat_name(p: &MufPat) -> String {
    match p {
        MufPat::Var(x) => x.clone(),
        _ => "_".into(),
    }
}

/// Lowers a transition closure to a [`TapeProgram`].
///
/// `takes_input` mirrors the model's flag: driver-facing transitions take
/// `(state, input)`, embedded ones take `state` alone. `init_state` is
/// split into the flat initial state slots.
///
/// # Errors
///
/// A human-readable reason when the closure cannot be lowered; the caller
/// is expected to fall back to the interpreter.
pub fn lower_closure(
    interp: &Rc<Interp>,
    closure: &Rc<Closure>,
    init_state: &MufValue,
    takes_input: bool,
) -> Result<TapeProgram, String> {
    let mut lw = Lower {
        interp,
        captured: &closure.env,
        ops: Vec::new(),
        consts: Vec::new(),
        scope: Vec::new(),
        env_slots: Vec::new(),
        global_regs: Vec::new(),
        reg_names: Vec::new(),
        next_reg: 0,
        depth: 0,
        unit: None,
    };
    let state_pat: Option<&MufPat> = if takes_input {
        match &closure.pat {
            MufPat::Tuple(ps) if ps.len() == 2 => Some(&ps[0]),
            _ => None,
        }
    } else {
        Some(&closure.pat)
    };
    let shape = state_pat.map_or(StateShape::Leaf, StateShape::of_pat);
    let (state_place, state_in) = lw.place_of_shape(&shape, state_pat);
    let input = takes_input.then(|| lw.fresh("input"));
    let arg_place = match input {
        Some(r) => Place::Tuple(vec![state_place, Place::Reg(r)]),
        None => state_place,
    };
    lw.bind_pat(&closure.pat, arg_place)?;
    let body_place = lw.lower(&closure.body)?;
    let (out, state_out) = match body_place {
        Place::Tuple(items) if items.len() == 2 => {
            let out = lw.out_spec(&items[0])?;
            let souts = lw.bind_state_out(&items[1], &shape)?;
            (out, souts)
        }
        Place::Reg(r) => {
            let o = lw.fresh("out");
            lw.emit(Op::Proj {
                dst: o,
                src: r,
                idx: 0,
                arity: 2,
            });
            let s = lw.fresh("state");
            lw.emit(Op::Proj {
                dst: s,
                src: r,
                idx: 1,
                arity: 2,
            });
            (OutSpec::Reg(o), lw.bind_state_out(&Place::Reg(s), &shape)?)
        }
        _ => return Err("transition must return (value, state)".into()),
    };
    lw.emit(Op::Halt);
    let init_slots = split_state(init_state, &shape)?;
    let mut seen = HashSet::new();
    let state_out_unique = state_out.iter().all(|r| seen.insert(*r));
    Ok(TapeProgram {
        consts: lw.consts,
        ops: lw.ops,
        num_regs: lw.next_reg,
        input,
        state_in,
        state_out,
        state_out_unique,
        out,
        env_slots: lw.env_slots,
        init_slots,
        shape,
        body_ptr: Rc::as_ptr(&closure.body) as usize,
        reg_names: lw.reg_names,
    })
}
