//! The optimizing µF pass pipeline (DESIGN.md §2.12).
//!
//! Runs on the scheduled kernel, after every checking pass has accepted
//! the program, and is driven by the effect & particle-invariance
//! analysis ([`crate::analysis::effects`]):
//!
//! 1. **Constant propagation & folding** — strict deterministic operators
//!    over literals are evaluated at compile time with the runtime's own
//!    value operators, so folded floats are bit-identical to evaluation;
//!    `if` on a constant condition selects its branch when the dead
//!    branch is effect-free.
//! 2. **Dead-stream elimination** — the transform counterpart of lint
//!    PZ0601: equations read by nothing are deleted, *except* anything
//!    that can reach `sample`/`observe`/`factor` or allocate an engine
//!    (deleting those would change posteriors or the engine seed order).
//! 3. **Common-subexpression elimination** — pure stateless operator
//!    trees computed more than once in an equation set are factored into
//!    a fresh equation.
//! 4. **Prelude hoisting** (the headline) — for every node targeted by an
//!    `infer`, the particle-invariant top-level equations are split into
//!    a generated `f#prelude` node evaluated **once per tick** by the
//!    engine and broadcast to all N particles, with the residual
//!    probabilistic equations left in a generated `f#main` node that
//!    receives the prelude's outputs alongside the original input.
//!
//! Every pass reports what it did through spanned [`Diagnostic`]s
//! (PZ0503, PZ0604–PZ0606), surfaced by `pzc opt`. Correctness is pinned
//! by the differential oracle in `tests/opt_equiv.rs`: optimized and
//! unoptimized programs must produce bit-identical posteriors under every
//! method and particle layout.

use crate::analysis::effects::{self, Effect, Summaries};
use crate::ast::{Const, Eq, Expr, NodeDecl, OpName, Pattern, Program};
use crate::diag::{Code, Diagnostic};
use crate::error::LangError;
use crate::schedule::schedule_program;
use probzelus_core::ops as vops;
use probzelus_core::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Which passes run. The default enables everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Constant propagation and folding (PZ0606).
    pub const_fold: bool,
    /// Dead-stream elimination (PZ0604).
    pub dead_streams: bool,
    /// Common-subexpression elimination (PZ0605).
    pub cse: bool,
    /// Particle-invariant prelude hoisting (PZ0503).
    pub hoist: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            const_fold: true,
            dead_streams: true,
            cse: true,
            hoist: true,
        }
    }
}

/// One output the generated prelude passes to the residual node, in
/// plan order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreludeOut {
    /// The current-tick value of an invariant stream.
    Now(String),
    /// The previous-tick value (satisfies residual `last` reads).
    Prev(String),
}

impl PreludeOut {
    /// The variable name carrying this output in the generated nodes.
    pub fn var(&self) -> String {
        match self {
            PreludeOut::Now(h) => h.clone(),
            PreludeOut::Prev(h) => format!("{h}#prev"),
        }
    }
}

/// The hoist plan for one `infer`-target node: which equations moved to
/// the shared prelude and how their values flow to the residual node.
/// Consumed by the plan-aware compiler ([`crate::compile`]).
#[derive(Debug, Clone)]
pub struct HoistPlan {
    /// The original node (left unchanged in the program).
    pub node: String,
    /// Generated prelude node (`node#prelude`), same parameter as the
    /// original, body returns [`HoistPlan::outputs`] as a nested pair.
    pub prelude_node: String,
    /// Generated residual node (`node#main`), parameter
    /// `(orig_param, outputs_pattern)`.
    pub main_node: String,
    /// Names of the hoisted equations.
    pub hoisted: Vec<String>,
    /// What the prelude returns, in order.
    pub outputs: Vec<PreludeOut>,
}

/// What the optimizer did: diagnostics for `pzc opt`, hoist plans for
/// the compiler, and pass counters.
#[derive(Debug, Clone, Default)]
pub struct OptReport {
    /// Spanned PZ0503/PZ0604/PZ0605/PZ0606 diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    /// Hoist plans keyed by original node name.
    pub plans: HashMap<String, HoistPlan>,
    /// Equations folded to a constant.
    pub folded: usize,
    /// Dead equations removed.
    pub removed: usize,
    /// Common subexpressions factored out.
    pub cse: usize,
}

impl OptReport {
    /// Total number of rewrites across all passes (hoisted equations
    /// count once each).
    pub fn total(&self) -> usize {
        let hoisted: usize = self.plans.values().map(|p| p.hoisted.len()).sum();
        self.folded + self.removed + self.cse + hoisted
    }
}

/// Optimizes a scheduled kernel program. Returns the rewritten program
/// (re-scheduled, with generated `#prelude`/`#main` nodes appended after
/// their original) and the report. The input must already be in kernel
/// form; nodes are never removed or renamed, so `infer` sites and node
/// applications stay valid.
pub fn optimize_program(p: &Program, cfg: &OptConfig) -> Result<(Program, OptReport), LangError> {
    let mut report = OptReport::default();
    let base = effects::analyze_program(p);
    let mut fresh = FreshCse::scan(p);
    let nodes = p
        .nodes
        .iter()
        .map(|n| NodeDecl {
            name: n.name.clone(),
            param: n.param.clone(),
            body: rewrite(&n.body, base.summaries(), cfg, &mut report, &mut fresh),
        })
        .collect();
    let mut prog = schedule_program(&Program { nodes })?;
    if cfg.hoist {
        plan_hoists(&mut prog, &mut report);
        prog = schedule_program(&prog)?;
    }
    Ok((prog, report))
}

// ---------------------------------------------------------------------
// Constant folding, dead-stream elimination, CSE (per equation set)
// ---------------------------------------------------------------------

/// Fresh `_cseN` names, starting above anything already in the program.
struct FreshCse(u32);

impl FreshCse {
    fn scan(p: &Program) -> FreshCse {
        let mut max = 0;
        for node in &p.nodes {
            crate::analysis::each_eq(&node.body, &mut |eq| {
                if let Eq::Def { name, .. } = eq {
                    if let Some(n) = name.strip_prefix("_cse").and_then(|s| s.parse().ok()) {
                        max = u32::max(max, n);
                    }
                }
            });
        }
        FreshCse(max)
    }

    fn next(&mut self) -> String {
        self.0 += 1;
        format!("_cse{}", self.0)
    }
}

/// Bottom-up rewrite: children first, then expression-level folding,
/// then the block-level passes on every equation set encountered.
fn rewrite(
    e: &Expr,
    s: Summaries<'_>,
    cfg: &OptConfig,
    report: &mut OptReport,
    fresh: &mut FreshCse,
) -> Expr {
    let rewritten = match e {
        Expr::At(inner, p) => Expr::at(rewrite(inner, s, cfg, report, fresh), *p),
        Expr::Const(_) | Expr::Var(_) | Expr::Last(_) => e.clone(),
        Expr::Pair(a, b) => Expr::pair(
            rewrite(a, s, cfg, report, fresh),
            rewrite(b, s, cfg, report, fresh),
        ),
        Expr::Op(op, args) => Expr::Op(
            *op,
            args.iter()
                .map(|a| rewrite(a, s, cfg, report, fresh))
                .collect(),
        ),
        Expr::App(f, arg) => Expr::App(f.clone(), Box::new(rewrite(arg, s, cfg, report, fresh))),
        Expr::Where { body, eqs } => {
            // Snapshot which right-hand sides were literals *before*
            // rewriting, so folding reports only real reductions.
            let was_const: HashSet<String> = eqs
                .iter()
                .filter_map(|eq| match eq {
                    Eq::Def { name, expr } if as_const(expr).is_some() => Some(name.clone()),
                    _ => None,
                })
                .collect();
            let eqs: Vec<Eq> = eqs
                .iter()
                .map(|eq| match eq {
                    Eq::Def { name, expr } => Eq::Def {
                        name: name.clone(),
                        expr: rewrite(expr, s, cfg, report, fresh),
                    },
                    other => other.clone(),
                })
                .collect();
            let body = rewrite(body, s, cfg, report, fresh);
            return optimize_block(body, eqs, was_const, s, cfg, report, fresh);
        }
        Expr::Present { cond, then, els } => Expr::Present {
            cond: Box::new(rewrite(cond, s, cfg, report, fresh)),
            then: Box::new(rewrite(then, s, cfg, report, fresh)),
            els: Box::new(rewrite(els, s, cfg, report, fresh)),
        },
        Expr::Reset { body, every } => Expr::Reset {
            body: Box::new(rewrite(body, s, cfg, report, fresh)),
            every: Box::new(rewrite(every, s, cfg, report, fresh)),
        },
        Expr::If { cond, then, els } => Expr::If {
            cond: Box::new(rewrite(cond, s, cfg, report, fresh)),
            then: Box::new(rewrite(then, s, cfg, report, fresh)),
            els: Box::new(rewrite(els, s, cfg, report, fresh)),
        },
        Expr::Sample(d) => Expr::Sample(Box::new(rewrite(d, s, cfg, report, fresh))),
        Expr::Observe(d, v) => Expr::Observe(
            Box::new(rewrite(d, s, cfg, report, fresh)),
            Box::new(rewrite(v, s, cfg, report, fresh)),
        ),
        Expr::Factor(w) => Expr::Factor(Box::new(rewrite(w, s, cfg, report, fresh))),
        Expr::ValueOp(x) => Expr::ValueOp(Box::new(rewrite(x, s, cfg, report, fresh))),
        Expr::Infer {
            particles,
            node,
            arg,
        } => Expr::Infer {
            particles: *particles,
            node: node.clone(),
            arg: Box::new(rewrite(arg, s, cfg, report, fresh)),
        },
        // Derived forms never reach the optimizer (it runs on the
        // kernel); passed through untouched for safety.
        Expr::Arrow(..) | Expr::Pre(..) | Expr::Fby(..) => e.clone(),
    };
    if cfg.const_fold {
        fold_here(&rewritten, s)
    } else {
        rewritten
    }
}

/// Tries to fold a single expression whose children are already
/// rewritten. Only strict deterministic operators over literals fold,
/// evaluated with the runtime's own [`vops`] so results are
/// bit-identical; anything that would error at run time stays unfolded
/// to preserve the error.
fn fold_here(e: &Expr, s: Summaries<'_>) -> Expr {
    match e {
        Expr::Op(op, args) if foldable_op(*op) => {
            let consts: Option<Vec<Const>> = args.iter().map(as_const).collect();
            let Some(consts) = consts else {
                return e.clone();
            };
            // Nil poison: strict operators propagate `nil` (eval_op).
            if consts.iter().any(|c| matches!(c, Const::Nil)) {
                return Expr::Const(Const::Nil);
            }
            let vals: Vec<Value> = consts.iter().map(const_to_value).collect();
            match fold_op(*op, &vals) {
                Some(v) => value_to_const(&v)
                    .map(Expr::Const)
                    .unwrap_or_else(|| e.clone()),
                None => e.clone(),
            }
        }
        // `fst`/`snd` of a literal pair: drop the other component only
        // when it is pure (no effect may be discarded).
        Expr::Op(op @ (OpName::Fst | OpName::Snd), args) if args.len() == 1 => {
            if let Expr::Pair(a, b) = args[0].peel() {
                let (keep, drop) = match op {
                    OpName::Fst => (a, b),
                    _ => (b, a),
                };
                if effects::effect_of(drop, s) == Effect::Pure {
                    return (**keep).clone();
                }
            }
            e.clone()
        }
        // A constant condition selects its branch; the dead branch may
        // only be discarded when doing so cannot change posteriors or
        // seed order.
        Expr::If { cond, then, els } => match as_const(cond) {
            Some(Const::Bool(b)) => {
                let (live, dead) = if b { (then, els) } else { (els, then) };
                if effects::effect_of(dead, s) <= Effect::Det && !effects::uses_engine(dead, s) {
                    (**live).clone()
                } else {
                    e.clone()
                }
            }
            Some(Const::Nil) => e.clone(), // nil condition errors at run time
            _ => e.clone(),
        },
        _ => e.clone(),
    }
}

/// Strict deterministic operators safe to evaluate at compile time.
fn foldable_op(op: OpName) -> bool {
    use OpName::*;
    matches!(
        op,
        Add | Sub
            | Mul
            | Div
            | Neg
            | Lt
            | Le
            | Gt
            | Ge
            | Eq
            | Ne
            | And
            | Or
            | Not
            | Exp
            | Log
            | Sqrt
            | Abs
            | Min
            | Max
            | FloatOfInt
    )
}

/// Mirrors the foldable arm of the interpreter's `core_op` dispatch.
fn fold_op(op: OpName, v: &[Value]) -> Option<Value> {
    use OpName::*;
    let r = match op {
        Add => vops::add(&v[0], &v[1]),
        Sub => vops::sub(&v[0], &v[1]),
        Mul => vops::mul(&v[0], &v[1]),
        Div => vops::div(&v[0], &v[1]),
        Neg => vops::neg(&v[0]),
        Lt => vops::lt(&v[0], &v[1]),
        Le => vops::le(&v[0], &v[1]),
        Gt => vops::gt(&v[0], &v[1]),
        Ge => vops::ge(&v[0], &v[1]),
        Eq => vops::eq(&v[0], &v[1]),
        Ne => vops::eq(&v[0], &v[1]).and_then(|x| vops::not(&x)),
        And => vops::and(&v[0], &v[1]),
        Or => vops::or(&v[0], &v[1]),
        Not => vops::not(&v[0]),
        Exp => vops::float_fn(&v[0], f64::exp),
        Log => vops::float_fn(&v[0], f64::ln),
        Sqrt => vops::float_fn(&v[0], f64::sqrt),
        Abs => vops::float_fn(&v[0], f64::abs),
        Min => vops::float_fn2(&v[0], &v[1], f64::min),
        Max => vops::float_fn2(&v[0], &v[1], f64::max),
        FloatOfInt => v[0].as_int().map(|n| Value::Float(n as f64)),
        _ => return None,
    };
    r.ok()
}

fn as_const(e: &Expr) -> Option<Const> {
    match e.peel() {
        Expr::Const(c) => Some(c.clone()),
        _ => None,
    }
}

fn const_to_value(c: &Const) -> Value {
    match c {
        Const::Unit => Value::Unit,
        Const::Bool(b) => Value::Bool(*b),
        Const::Int(n) => Value::Int(*n),
        Const::Float(x) => Value::Float(*x),
        Const::Nil => Value::Unit, // filtered out before reaching here
    }
}

fn value_to_const(v: &Value) -> Option<Const> {
    match v {
        Value::Unit => Some(Const::Unit),
        Value::Bool(b) => Some(Const::Bool(*b)),
        Value::Int(n) => Some(Const::Int(*n)),
        Value::Float(x) => Some(Const::Float(*x)),
        _ => None,
    }
}

/// Block-level passes over one (already child-rewritten) equation set:
/// constant propagation to fixpoint, dead-stream elimination, CSE.
fn optimize_block(
    body: Expr,
    eqs: Vec<Eq>,
    was_const: HashSet<String>,
    s: Summaries<'_>,
    cfg: &OptConfig,
    report: &mut OptReport,
    fresh: &mut FreshCse,
) -> Expr {
    // Automaton equations are expanded long before this pass; a block
    // still carrying one is left untouched.
    if eqs.iter().any(|eq| matches!(eq, Eq::Automaton { .. })) {
        return Expr::Where {
            body: Box::new(body),
            eqs,
        };
    }
    let mut body = body;
    let mut eqs = eqs;

    if cfg.const_fold {
        propagate_constants(&mut body, &mut eqs, s);
    }
    // Report equations that the fold/prop rounds reduced to literals.
    for eq in &eqs {
        if let Eq::Def { name, expr } = eq {
            if as_const(expr).is_some() && !was_const.contains(name) {
                report.folded += 1;
                report.diagnostics.push(
                    Diagnostic::lint(
                        Code::OPT_CONST_FOLD,
                        format!("`{name}` folds to the constant `{}`", print_const(expr)),
                    )
                    .with_pos(expr.span()),
                );
            }
        }
    }
    if cfg.dead_streams {
        eliminate_dead_streams(&body, &mut eqs, s, report);
    }
    if cfg.cse {
        factor_common_subexpressions(&mut body, &mut eqs, fresh, report);
    }
    if eqs.is_empty() {
        body
    } else {
        Expr::Where {
            body: Box::new(body),
            eqs,
        }
    }
}

fn print_const(e: &Expr) -> String {
    match e.peel() {
        Expr::Const(c) => format!("{c}"),
        _ => String::new(),
    }
}

/// Substitutes constant definitions into their readers and re-folds, to
/// fixpoint. A definition `x = c` only propagates when `x` has no
/// `init` and is never read through `last` (both would read state, not
/// the constant).
fn propagate_constants(body: &mut Expr, eqs: &mut [Eq], s: Summaries<'_>) {
    for _ in 0..8 {
        let inits: HashSet<&str> = eqs
            .iter()
            .filter_map(|eq| match eq {
                Eq::Init { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        let mut last_read: BTreeSet<String> = BTreeSet::new();
        for eq in eqs.iter() {
            if let Eq::Def { expr, .. } = eq {
                last_read.extend(effects::split_reads(expr).1);
            }
        }
        last_read.extend(effects::split_reads(body).1);
        let consts: BTreeMap<String, Const> = eqs
            .iter()
            .filter_map(|eq| match eq {
                Eq::Def { name, expr }
                    if !inits.contains(name.as_str()) && !last_read.contains(name) =>
                {
                    as_const(expr).map(|c| (name.clone(), c))
                }
                _ => None,
            })
            .collect();
        if consts.is_empty() {
            return;
        }
        let mut changed = false;
        for eq in eqs.iter_mut() {
            if let Eq::Def { name, expr } = eq {
                if consts.contains_key(name) {
                    continue; // already a literal
                }
                let new = subst_consts(expr, &consts, s);
                if new != *expr {
                    *expr = new;
                    changed = true;
                }
            }
        }
        let new_body = subst_consts(body, &consts, s);
        if new_body != *body {
            *body = new_body;
            changed = true;
        }
        if !changed {
            return;
        }
    }
}

/// Replaces reads of constant streams with their literal and re-folds
/// on the way out. Does not descend into nested `where` blocks that
/// rebind a substituted name.
fn subst_consts(e: &Expr, consts: &BTreeMap<String, Const>, s: Summaries<'_>) -> Expr {
    if consts.is_empty() {
        return e.clone();
    }
    let rebuilt = match e {
        Expr::Var(x) => match consts.get(x) {
            Some(c) => Expr::Const(c.clone()),
            None => e.clone(),
        },
        Expr::At(inner, p) => Expr::at(subst_consts(inner, consts, s), *p),
        Expr::Const(_) | Expr::Last(_) => e.clone(),
        Expr::Pair(a, b) => Expr::pair(subst_consts(a, consts, s), subst_consts(b, consts, s)),
        Expr::Op(op, args) => Expr::Op(
            *op,
            args.iter().map(|a| subst_consts(a, consts, s)).collect(),
        ),
        Expr::App(f, arg) => Expr::App(f.clone(), Box::new(subst_consts(arg, consts, s))),
        Expr::Where { body, eqs } => {
            // Shadowing: drop rebound names from the substitution.
            let bound: HashSet<&str> = eqs
                .iter()
                .filter_map(|eq| match eq {
                    Eq::Def { name, .. } | Eq::Init { name, .. } => Some(name.as_str()),
                    Eq::Automaton { .. } => None,
                })
                .collect();
            let narrowed: BTreeMap<String, Const> = consts
                .iter()
                .filter(|(k, _)| !bound.contains(k.as_str()))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            Expr::Where {
                body: Box::new(subst_consts(body, &narrowed, s)),
                eqs: eqs
                    .iter()
                    .map(|eq| match eq {
                        Eq::Def { name, expr } => Eq::Def {
                            name: name.clone(),
                            expr: subst_consts(expr, &narrowed, s),
                        },
                        other => other.clone(),
                    })
                    .collect(),
            }
        }
        Expr::Present { cond, then, els } => Expr::Present {
            cond: Box::new(subst_consts(cond, consts, s)),
            then: Box::new(subst_consts(then, consts, s)),
            els: Box::new(subst_consts(els, consts, s)),
        },
        Expr::Reset { body, every } => Expr::Reset {
            body: Box::new(subst_consts(body, consts, s)),
            every: Box::new(subst_consts(every, consts, s)),
        },
        Expr::If { cond, then, els } => Expr::If {
            cond: Box::new(subst_consts(cond, consts, s)),
            then: Box::new(subst_consts(then, consts, s)),
            els: Box::new(subst_consts(els, consts, s)),
        },
        Expr::Sample(d) => Expr::Sample(Box::new(subst_consts(d, consts, s))),
        Expr::Observe(d, v) => Expr::Observe(
            Box::new(subst_consts(d, consts, s)),
            Box::new(subst_consts(v, consts, s)),
        ),
        Expr::Factor(w) => Expr::Factor(Box::new(subst_consts(w, consts, s))),
        Expr::ValueOp(x) => Expr::ValueOp(Box::new(subst_consts(x, consts, s))),
        Expr::Infer {
            particles,
            node,
            arg,
        } => Expr::Infer {
            particles: *particles,
            node: node.clone(),
            arg: Box::new(subst_consts(arg, consts, s)),
        },
        Expr::Arrow(..) | Expr::Pre(..) | Expr::Fby(..) => e.clone(),
    };
    fold_here(&rebuilt, s)
}

/// Removes equations whose stream is read by nothing (not by another
/// equation, not by the body), iterating until stable. Only effect-free
/// equations go: anything ≥ `Prob` or allocating an engine stays, so
/// posteriors and seed order cannot change.
fn eliminate_dead_streams(
    body: &Expr,
    eqs: &mut Vec<Eq>,
    s: Summaries<'_>,
    report: &mut OptReport,
) {
    loop {
        let mut read: HashSet<String> = HashSet::new();
        let mut reads = Vec::new();
        crate::analysis::collect_reads(body, &mut reads);
        read.extend(reads);
        for eq in eqs.iter() {
            if let Eq::Def { name, expr } = eq {
                let mut reads = Vec::new();
                crate::analysis::collect_reads(expr, &mut reads);
                // Self-reads (e.g. `x = last x + 1`) keep nothing alive.
                read.extend(reads.into_iter().filter(|r| r != name));
            }
        }
        let dead: Vec<(String, Option<crate::error::Pos>)> = eqs
            .iter()
            .filter_map(|eq| match eq {
                Eq::Def { name, expr }
                    if !read.contains(name)
                        && effects::effect_of(expr, s) <= Effect::Det
                        && !effects::uses_engine(expr, s) =>
                {
                    Some((name.clone(), expr.span()))
                }
                Eq::Init { name, .. }
                    if !read.contains(name)
                        && !eqs
                            .iter()
                            .any(|q| matches!(q, Eq::Def { name: d, .. } if d == name)) =>
                {
                    Some((name.clone(), None))
                }
                _ => None,
            })
            .collect();
        if dead.is_empty() {
            return;
        }
        for (name, pos) in &dead {
            report.removed += 1;
            report.diagnostics.push(
                Diagnostic::lint(
                    Code::OPT_DEAD_STREAM,
                    format!("dead stream `{name}` removed (read by nothing)"),
                )
                .with_pos(*pos),
            );
        }
        let dead_names: HashSet<String> = dead.into_iter().map(|(n, _)| n).collect();
        eqs.retain(|eq| match eq {
            Eq::Def { name, .. } | Eq::Init { name, .. } => !dead_names.contains(name),
            Eq::Automaton { .. } => true,
        });
    }
}

// ---------------------------------------------------------------------
// Common-subexpression elimination
// ---------------------------------------------------------------------

/// Is the expression a pure stateless operator tree (safe to compute
/// once and share)? Leaves are constants, stream reads, and `last`
/// reads; interior nodes are strict deterministic operators and `if`.
fn pure_tree(e: &Expr) -> bool {
    match e.peel() {
        Expr::Const(_) | Expr::Var(_) | Expr::Last(_) => true,
        Expr::Op(OpName::DrawDist, _) => false,
        Expr::Op(_, args) => args.iter().all(pure_tree),
        Expr::Pair(a, b) => pure_tree(a) && pure_tree(b),
        Expr::If { cond, then, els } => pure_tree(cond) && pure_tree(then) && pure_tree(els),
        _ => false,
    }
}

/// Number of interior nodes: a tree must be big enough to be worth a
/// fresh stream.
fn tree_size(e: &Expr) -> usize {
    match e.peel() {
        Expr::Const(_) | Expr::Var(_) | Expr::Last(_) => 0,
        Expr::Op(_, args) => 1 + args.iter().map(tree_size).sum::<usize>(),
        Expr::Pair(a, b) => 1 + tree_size(a) + tree_size(b),
        Expr::If { cond, then, els } => 1 + tree_size(cond) + tree_size(then) + tree_size(els),
        _ => 0,
    }
}

/// Visits maximal pure subtrees in strict evaluation positions only —
/// never inside `present` branches, `reset` bodies, nested `where`
/// blocks, or `infer` arguments (their evaluation context differs from
/// the equation set's).
fn each_strict_pure<'e>(e: &'e Expr, f: &mut impl FnMut(&'e Expr)) {
    if pure_tree(e) {
        if tree_size(e) >= 2 {
            f(e);
        }
        return;
    }
    match e {
        Expr::At(inner, _) => each_strict_pure(inner, f),
        Expr::Const(_) | Expr::Var(_) | Expr::Last(_) => {}
        Expr::Pair(a, b) | Expr::Observe(a, b) => {
            each_strict_pure(a, f);
            each_strict_pure(b, f);
        }
        Expr::Op(_, args) => {
            for a in args {
                each_strict_pure(a, f);
            }
        }
        Expr::App(_, arg) => each_strict_pure(arg, f),
        Expr::Sample(x) | Expr::Factor(x) | Expr::ValueOp(x) => each_strict_pure(x, f),
        Expr::If { cond, then, els } => {
            each_strict_pure(cond, f);
            each_strict_pure(then, f);
            each_strict_pure(els, f);
        }
        Expr::Present { cond, .. } => each_strict_pure(cond, f),
        Expr::Reset { every, .. } => each_strict_pure(every, f),
        Expr::Where { .. } | Expr::Infer { .. } => {}
        Expr::Arrow(..) | Expr::Pre(..) | Expr::Fby(..) => {}
    }
}

/// Replaces every strict occurrence of `target` (modulo spans) with a
/// variable read.
fn replace_strict(e: &Expr, target: &Expr, var: &str) -> Expr {
    if pure_tree(e) {
        if e.strip_spans() == *target {
            return Expr::Var(var.to_string());
        }
        // Smaller pure trees may still contain the target only if the
        // target is a subtree; pure trees are traversed structurally.
        return match e {
            Expr::At(inner, p) => Expr::at(replace_strict(inner, target, var), *p),
            Expr::Op(op, args) => Expr::Op(
                *op,
                args.iter()
                    .map(|a| replace_strict(a, target, var))
                    .collect(),
            ),
            Expr::Pair(a, b) => Expr::pair(
                replace_strict(a, target, var),
                replace_strict(b, target, var),
            ),
            Expr::If { cond, then, els } => Expr::If {
                cond: Box::new(replace_strict(cond, target, var)),
                then: Box::new(replace_strict(then, target, var)),
                els: Box::new(replace_strict(els, target, var)),
            },
            _ => e.clone(),
        };
    }
    match e {
        Expr::At(inner, p) => Expr::at(replace_strict(inner, target, var), *p),
        Expr::Const(_) | Expr::Var(_) | Expr::Last(_) => e.clone(),
        Expr::Pair(a, b) => Expr::pair(
            replace_strict(a, target, var),
            replace_strict(b, target, var),
        ),
        Expr::Op(op, args) => Expr::Op(
            *op,
            args.iter()
                .map(|a| replace_strict(a, target, var))
                .collect(),
        ),
        Expr::App(f, arg) => Expr::App(f.clone(), Box::new(replace_strict(arg, target, var))),
        Expr::Sample(x) => Expr::Sample(Box::new(replace_strict(x, target, var))),
        Expr::Observe(a, b) => Expr::Observe(
            Box::new(replace_strict(a, target, var)),
            Box::new(replace_strict(b, target, var)),
        ),
        Expr::Factor(x) => Expr::Factor(Box::new(replace_strict(x, target, var))),
        Expr::ValueOp(x) => Expr::ValueOp(Box::new(replace_strict(x, target, var))),
        Expr::If { cond, then, els } => Expr::If {
            cond: Box::new(replace_strict(cond, target, var)),
            then: Box::new(replace_strict(then, target, var)),
            els: Box::new(replace_strict(els, target, var)),
        },
        Expr::Present { cond, then, els } => Expr::Present {
            cond: Box::new(replace_strict(cond, target, var)),
            then: then.clone(),
            els: els.clone(),
        },
        Expr::Reset { body, every } => Expr::Reset {
            body: body.clone(),
            every: Box::new(replace_strict(every, target, var)),
        },
        Expr::Where { .. } | Expr::Infer { .. } => e.clone(),
        Expr::Arrow(..) | Expr::Pre(..) | Expr::Fby(..) => e.clone(),
    }
}

/// Factors pure operator trees computed more than once into fresh
/// `_cseN` equations (one CSE round per block).
fn factor_common_subexpressions(
    body: &mut Expr,
    eqs: &mut Vec<Eq>,
    fresh: &mut FreshCse,
    report: &mut OptReport,
) {
    // Count candidate subtrees across the whole block (keyed modulo
    // spans, deterministic order of first sighting).
    let mut order: Vec<Expr> = Vec::new();
    let mut counts: HashMap<String, (usize, Option<crate::error::Pos>)> = HashMap::new();
    {
        let mut see = |e: &Expr| {
            let stripped = e.strip_spans();
            let key = format!("{stripped:?}");
            let entry = counts.entry(key).or_insert_with(|| {
                order.push(stripped);
                (0, e.span())
            });
            entry.0 += 1;
        };
        for eq in eqs.iter() {
            if let Eq::Def { expr, .. } = eq {
                each_strict_pure(expr, &mut see);
            }
        }
        each_strict_pure(body, &mut see);
    }
    let mut new_eqs: Vec<Eq> = Vec::new();
    // Largest trees first so a shared tree absorbs its shared subtrees.
    let mut shared: Vec<Expr> = order
        .into_iter()
        .filter(|e| counts[&format!("{e:?}")].0 >= 2)
        .collect();
    shared.sort_by_key(|e| std::cmp::Reverse(tree_size(e)));
    for target in shared {
        // Re-count after earlier replacements may have removed copies.
        let mut n = 0;
        {
            let mut see = |e: &Expr| {
                if e.strip_spans() == target {
                    n += 1;
                }
            };
            for eq in eqs.iter() {
                if let Eq::Def { expr, .. } = eq {
                    each_strict_pure(expr, &mut see);
                }
            }
            for eq in new_eqs.iter() {
                if let Eq::Def { expr, .. } = eq {
                    each_strict_pure(expr, &mut see);
                }
            }
            each_strict_pure(body, &mut see);
        }
        if n < 2 {
            continue;
        }
        let name = fresh.next();
        for eq in eqs.iter_mut().chain(new_eqs.iter_mut()) {
            if let Eq::Def { expr, .. } = eq {
                *expr = replace_strict(expr, &target, &name);
            }
        }
        *body = replace_strict(body, &target, &name);
        let pos = counts[&format!("{target:?}")].1;
        report.cse += 1;
        report.diagnostics.push(
            Diagnostic::lint(
                Code::OPT_CSE,
                format!("common subexpression computed {n} times factored into `{name}`"),
            )
            .with_pos(pos),
        );
        new_eqs.push(Eq::Def { name, expr: target });
    }
    eqs.extend(new_eqs);
}

// ---------------------------------------------------------------------
// Prelude hoisting
// ---------------------------------------------------------------------

/// For every node targeted by an `infer` site, splits its particle-
/// invariant top-level equations into generated `f#prelude` / `f#main`
/// nodes and records the [`HoistPlan`]. The original node stays in the
/// program untouched (it may also be applied directly).
fn plan_hoists(prog: &mut Program, report: &mut OptReport) {
    let facts = effects::analyze_program(prog);
    let summaries = facts.summaries();
    let mut targets: Vec<String> = Vec::new();
    let mut unsafe_args: HashSet<String> = HashSet::new();
    for node in &prog.nodes {
        crate::analysis::walk(&node.body, &mut |e| {
            if let Expr::Infer { node: f, arg, .. } = e {
                if !targets.contains(f) {
                    targets.push(f.clone());
                }
                // The site argument moves from per-particle evaluation
                // into the shared per-tick prelude, so it must itself be
                // particle-invariant: deterministic effect, no engines.
                if effects::effect_of(arg, summaries) > Effect::Det
                    || effects::uses_engine(arg, summaries)
                {
                    unsafe_args.insert(f.clone());
                }
            }
        });
    }
    targets.retain(|f| !unsafe_args.contains(f));
    // Probabilistic nodes are also driver-facing `infer_node` targets,
    // where the tick input reaches the prelude directly (no argument
    // expression to guard), so they are always safe to plan.
    for node in &prog.nodes {
        if facts.node_effect(&node.name) == Effect::Prob && !targets.contains(&node.name) {
            targets.push(node.name.clone());
        }
    }
    let mut generated: Vec<(usize, NodeDecl, NodeDecl)> = Vec::new();
    for f in targets {
        let Some(idx) = prog.nodes.iter().position(|n| n.name == f) else {
            continue;
        };
        let decl = &prog.nodes[idx];
        let Expr::Where { body, eqs } = decl.body.peel() else {
            continue;
        };
        let Some(inv) = facts.invariant.get(&f) else {
            continue;
        };
        if inv.is_empty() {
            continue;
        }
        // Bail out if a nested block rebinds a hoisted name — the
        // `last` substitution below would capture it.
        let mut nested_defs: HashSet<String> = HashSet::new();
        crate::analysis::walk(&decl.body, &mut |e| {
            if let Expr::Where { eqs: inner, .. } = e {
                if !std::ptr::eq(e, decl.body.peel()) {
                    for eq in inner {
                        if let Eq::Def { name, .. } | Eq::Init { name, .. } = eq {
                            nested_defs.insert(name.clone());
                        }
                    }
                }
            }
        });
        if inv.iter().any(|h| nested_defs.contains(h)) {
            continue;
        }
        // What does the residual read from the hoisted set?
        let mut now_out: BTreeSet<String> = BTreeSet::new();
        let mut prev_out: BTreeSet<String> = BTreeSet::new();
        let mut note = |e: &Expr| {
            let (now, lasts) = effects::split_reads(e);
            now_out.extend(now.intersection(inv).cloned());
            prev_out.extend(lasts.intersection(inv).cloned());
        };
        for eq in eqs {
            if let Eq::Def { name, expr } = eq {
                if !inv.contains(name) {
                    note(expr);
                }
            }
        }
        note(body);
        let outputs: Vec<PreludeOut> = inv
            .iter()
            .flat_map(|h| {
                let mut outs = Vec::new();
                if now_out.contains(h) {
                    outs.push(PreludeOut::Now(h.clone()));
                }
                if prev_out.contains(h) {
                    outs.push(PreludeOut::Prev(h.clone()));
                }
                outs
            })
            .collect();
        if outputs.is_empty() {
            continue; // nothing flows to the residual: hoisting is moot
        }

        // Prelude node: the hoisted equations (defs and their inits, in
        // scheduled order) plus a `#prev` reader per `last` output.
        let mut pre_eqs: Vec<Eq> = eqs
            .iter()
            .filter(|eq| match eq {
                Eq::Def { name, .. } | Eq::Init { name, .. } => inv.contains(name),
                Eq::Automaton { .. } => false,
            })
            .cloned()
            .collect();
        for h in &prev_out {
            pre_eqs.push(Eq::Def {
                name: format!("{h}#prev"),
                expr: Expr::Last(h.clone()),
            });
        }
        let out_exprs: Vec<Expr> = outputs.iter().map(|o| Expr::Var(o.var())).collect();
        let pre_body = nest_pairs(out_exprs);
        let prelude = NodeDecl {
            name: format!("{f}#prelude"),
            param: decl.param.clone(),
            body: Expr::Where {
                body: Box::new(pre_body),
                eqs: pre_eqs,
            },
        };

        // Residual node: everything else, with `last h` reads redirected
        // to the prelude's `h#prev` output.
        let prevs: HashSet<&String> = prev_out.iter().collect();
        let main_eqs: Vec<Eq> = eqs
            .iter()
            .filter(|eq| match eq {
                Eq::Def { name, .. } | Eq::Init { name, .. } => !inv.contains(name),
                Eq::Automaton { .. } => true,
            })
            .map(|eq| match eq {
                Eq::Def { name, expr } => Eq::Def {
                    name: name.clone(),
                    expr: subst_last(expr, &prevs),
                },
                other => other.clone(),
            })
            .collect();
        let main_body = subst_last(body, &prevs);
        let out_pat = nest_pair_pattern(outputs.iter().map(|o| Pattern::Var(o.var())).collect());
        let main = NodeDecl {
            name: format!("{f}#main"),
            param: Pattern::Pair(Box::new(decl.param.clone()), Box::new(out_pat)),
            body: if main_eqs.is_empty() {
                main_body
            } else {
                Expr::Where {
                    body: Box::new(main_body),
                    eqs: main_eqs,
                }
            },
        };

        let hoisted: Vec<String> = inv.iter().cloned().collect();
        report.diagnostics.push(
            Diagnostic::lint(
                Code::OPT_HOISTED_PRELUDE,
                format!(
                    "node `{f}`: {} particle-invariant equation(s) hoisted into a shared \
                     per-tick prelude: {}",
                    hoisted.len(),
                    hoisted.join(", ")
                ),
            )
            .with_pos(decl.body.span()),
        );
        report.plans.insert(
            f.clone(),
            HoistPlan {
                node: f.clone(),
                prelude_node: prelude.name.clone(),
                main_node: main.name.clone(),
                hoisted,
                outputs,
            },
        );
        generated.push((idx, prelude, main));
    }
    // Insert generated nodes right after their original, later indices
    // first so earlier positions stay valid.
    generated.sort_by_key(|(idx, _, _)| std::cmp::Reverse(*idx));
    for (idx, prelude, main) in generated {
        prog.nodes.insert(idx + 1, main);
        prog.nodes.insert(idx + 1, prelude);
    }
}

/// `last h` → `h#prev` for hoisted streams (applied to residual
/// equations; capture was excluded by the nested-rebind bailout).
fn subst_last(e: &Expr, prevs: &HashSet<&String>) -> Expr {
    match e {
        Expr::Last(h) if prevs.contains(h) => Expr::Var(format!("{h}#prev")),
        Expr::At(inner, p) => Expr::at(subst_last(inner, prevs), *p),
        Expr::Const(_) | Expr::Var(_) | Expr::Last(_) => e.clone(),
        Expr::Pair(a, b) => Expr::pair(subst_last(a, prevs), subst_last(b, prevs)),
        Expr::Op(op, args) => Expr::Op(*op, args.iter().map(|a| subst_last(a, prevs)).collect()),
        Expr::App(f, arg) => Expr::App(f.clone(), Box::new(subst_last(arg, prevs))),
        Expr::Where { body, eqs } => Expr::Where {
            body: Box::new(subst_last(body, prevs)),
            eqs: eqs
                .iter()
                .map(|eq| match eq {
                    Eq::Def { name, expr } => Eq::Def {
                        name: name.clone(),
                        expr: subst_last(expr, prevs),
                    },
                    other => other.clone(),
                })
                .collect(),
        },
        Expr::Present { cond, then, els } => Expr::Present {
            cond: Box::new(subst_last(cond, prevs)),
            then: Box::new(subst_last(then, prevs)),
            els: Box::new(subst_last(els, prevs)),
        },
        Expr::Reset { body, every } => Expr::Reset {
            body: Box::new(subst_last(body, prevs)),
            every: Box::new(subst_last(every, prevs)),
        },
        Expr::If { cond, then, els } => Expr::If {
            cond: Box::new(subst_last(cond, prevs)),
            then: Box::new(subst_last(then, prevs)),
            els: Box::new(subst_last(els, prevs)),
        },
        Expr::Sample(d) => Expr::Sample(Box::new(subst_last(d, prevs))),
        Expr::Observe(d, v) => Expr::Observe(
            Box::new(subst_last(d, prevs)),
            Box::new(subst_last(v, prevs)),
        ),
        Expr::Factor(w) => Expr::Factor(Box::new(subst_last(w, prevs))),
        Expr::ValueOp(x) => Expr::ValueOp(Box::new(subst_last(x, prevs))),
        Expr::Infer {
            particles,
            node,
            arg,
        } => Expr::Infer {
            particles: *particles,
            node: node.clone(),
            arg: Box::new(subst_last(arg, prevs)),
        },
        Expr::Arrow(..) | Expr::Pre(..) | Expr::Fby(..) => e.clone(),
    }
}

fn nest_pairs(mut items: Vec<Expr>) -> Expr {
    let last = items.pop().expect("at least one output");
    items
        .into_iter()
        .rev()
        .fold(last, |acc, e| Expr::pair(e, acc))
}

fn nest_pair_pattern(mut items: Vec<Pattern>) -> Pattern {
    let last = items.pop().expect("at least one output");
    items
        .into_iter()
        .rev()
        .fold(last, |acc, p| Pattern::Pair(Box::new(p), Box::new(acc)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::transform::desugar_program;

    fn optimized(src: &str) -> (Program, OptReport) {
        let p = parse_program(src).unwrap();
        let kernel = schedule_program(&desugar_program(&p)).unwrap();
        optimize_program(&kernel, &OptConfig::default()).unwrap()
    }

    fn eq_expr<'p>(p: &'p Program, node: &str, name: &str) -> &'p Expr {
        let decl = p.node(node).unwrap();
        let Expr::Where { eqs, .. } = decl.body.peel() else {
            panic!("body is not a where: {:?}", decl.body)
        };
        eqs.iter()
            .find_map(|eq| match eq {
                Eq::Def { name: n, expr } if n == name => Some(expr),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no eq `{name}` in `{node}`"))
    }

    #[test]
    fn folds_arithmetic_to_a_bit_identical_literal() {
        // The whole node collapses: `x` folds to a literal, propagates
        // into the body, and the now-dead equation set disappears.
        let (p, r) = optimized("let node k u = x where rec x = 1. +. 2. *. 3.");
        assert_eq!(
            p.node("k").unwrap().body.peel(),
            &Expr::Const(Const::Float(1.0 + 2.0 * 3.0))
        );
        assert_eq!(r.folded, 1);
        assert!(r.diagnostics.iter().any(|d| d.code == Code::OPT_CONST_FOLD));
    }

    #[test]
    fn division_by_zero_stays_unfolded() {
        let (p, r) = optimized("let node k u = x where rec x = 1. /. 0.");
        assert!(matches!(eq_expr(&p, "k", "x").peel(), Expr::Op(..)));
        assert_eq!(r.folded, 0);
    }

    #[test]
    fn constants_propagate_and_the_source_stream_dies() {
        let (p, r) = optimized("let node k u = b where rec a = 2. and b = a *. 3.");
        assert_eq!(
            p.node("k").unwrap().body.peel(),
            &Expr::Const(Const::Float(6.0))
        );
        assert!(r.removed >= 1);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == Code::OPT_DEAD_STREAM));
    }

    #[test]
    fn effectful_equations_survive_dse() {
        let (p, _) = optimized(
            "let node f y = x where
               rec x = sample (gaussian (0., 1.))
               and dead = y *. 2.
               and () = observe (gaussian (x, 1.), y)",
        );
        let Expr::Where { eqs, .. } = p.node("f").unwrap().body.peel() else {
            panic!()
        };
        assert!(!eqs.iter().any(|e| e.name() == "dead"));
        // The observe equation is Prob: kept even though `_unit1` is
        // read by nothing.
        assert!(eqs.iter().any(|e| e.name().starts_with("_unit")), "{eqs:?}");
    }

    #[test]
    fn repeated_pure_trees_are_factored_once() {
        let (p, r) = optimized(
            "let node f y = a +. b where
               rec a = y *. y +. 1.
               and b = y *. y +. 1.",
        );
        let Expr::Where { eqs, .. } = p.node("f").unwrap().body.peel() else {
            panic!()
        };
        assert!(eqs.iter().any(|e| e.name().starts_with("_cse")), "{eqs:?}");
        assert_eq!(r.cse, 1);
        assert_eq!(eq_expr(&p, "f", "a").peel(), &Expr::Var("_cse1".into()));
        assert_eq!(eq_expr(&p, "f", "b").peel(), &Expr::Var("_cse1".into()));
    }

    #[test]
    fn hmm_first_flags_hoist_into_a_prelude() {
        let (p, r) = optimized(
            "let node hmm y = x where
               rec x = sample (gaussian ((0. -> pre x), (100. -> 1.)))
               and () = observe (gaussian (x, 1.), y)
             let node main y = infer 10 hmm y",
        );
        let plan = r.plans.get("hmm").expect("hmm should have a hoist plan");
        assert_eq!(plan.prelude_node, "hmm#prelude");
        assert_eq!(plan.main_node, "hmm#main");
        assert_eq!(plan.hoisted, vec!["_first1", "_first2"]);
        assert_eq!(
            plan.outputs,
            vec![
                PreludeOut::Prev("_first1".into()),
                PreludeOut::Prev("_first2".into())
            ]
        );
        // Both generated nodes exist; the original is untouched.
        assert!(p.node("hmm").is_some());
        let pre = p.node("hmm#prelude").unwrap();
        let Expr::Where { eqs, .. } = pre.body.peel() else {
            panic!()
        };
        assert!(eqs.iter().any(|e| e.name() == "_first1#prev"));
        let main = p.node("hmm#main").unwrap();
        // Residual `last _first1` reads became prelude-output reads.
        let mut lasts = Vec::new();
        crate::analysis::walk(&main.body, &mut |e| {
            if let Expr::Last(n) = e {
                lasts.push(n.clone());
            }
        });
        assert!(lasts.iter().all(|n| !n.starts_with("_first")), "{lasts:?}");
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == Code::OPT_HOISTED_PRELUDE));
    }

    #[test]
    fn nodes_without_invariant_equations_get_no_plan() {
        let (_, r) = optimized(
            "let node m y = sample (gaussian (y, 1.))
             let node main y = infer 10 m y",
        );
        assert!(r.plans.is_empty());
    }

    #[test]
    fn counter_input_hoists_fully() {
        // A deterministic preprocessing stream feeding the sample is
        // exactly what the prelude exists for.
        let (p, r) = optimized(
            "let node f y = x where
               rec t = (0. -> pre t +. 1.)
               and x = sample (gaussian (t, 1.))
               and () = observe (gaussian (x, 1.), y)
             let node main y = infer 10 f y",
        );
        let plan = r.plans.get("f").expect("plan");
        assert!(plan.hoisted.contains(&"t".to_string()), "{plan:?}");
        assert!(plan.outputs.contains(&PreludeOut::Now("t".into())));
        // The residual no longer defines `t`.
        let main = p.node("f#main").unwrap();
        let Expr::Where { eqs, .. } = main.body.peel() else {
            panic!()
        };
        assert!(!eqs.iter().any(|e| e.name() == "t"), "{eqs:?}");
    }
}
