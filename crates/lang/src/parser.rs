//! Recursive-descent parser for the ProbZelus surface syntax.
//!
//! Operator precedence, loosest first: `where` < `->` / `fby` < `||` <
//! `&&` < comparisons < additive < multiplicative < unary < application.
//! `->` and `fby` are right-associative; tuples nest to the right.

use crate::ast::{AutoState, Const, Eq, Expr, NodeDecl, OpName, Pattern, Program};
use crate::error::{LangError, Pos, Stage};
use crate::lexer::{lex, Spanned, Tok};

/// Parses a whole program.
///
/// # Errors
///
/// Returns the first lexical or syntax error with its position.
pub fn parse_program(src: &str) -> Result<Program, LangError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        i: 0,
        fresh: 0,
    };
    let mut nodes = Vec::new();
    while !p.at(&Tok::Eof) {
        nodes.push(p.node_decl()?);
    }
    Ok(Program { nodes })
}

/// Parses a single expression (used by tests and the REPL-style API).
///
/// # Errors
///
/// Returns the first lexical or syntax error.
pub fn parse_expr(src: &str) -> Result<Expr, LangError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        i: 0,
        fresh: 0,
    };
    let e = p.expr_where()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
    fresh: u32,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), LangError> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(LangError::at(
                Stage::Parse,
                self.pos(),
                format!("expected {t}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(LangError::at(
                Stage::Parse,
                self.pos(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn fresh_var(&mut self, hint: &str) -> String {
        self.fresh += 1;
        format!("_{hint}{}", self.fresh)
    }

    // ---- declarations ------------------------------------------------

    fn node_decl(&mut self) -> Result<NodeDecl, LangError> {
        self.expect(Tok::Let)?;
        self.expect(Tok::Node)?;
        let name = self.ident()?;
        let param = self.pattern()?;
        self.expect(Tok::Equal)?;
        let body = self.expr_where()?;
        Ok(NodeDecl { name, param, body })
    }

    fn pattern(&mut self) -> Result<Pattern, LangError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(Pattern::Var(s))
            }
            Tok::LParen => {
                self.bump();
                if self.eat(&Tok::RParen) {
                    return Ok(Pattern::Unit);
                }
                let mut parts = vec![self.pattern()?];
                while self.eat(&Tok::Comma) {
                    parts.push(self.pattern()?);
                }
                self.expect(Tok::RParen)?;
                let mut it = parts.into_iter().rev();
                let last = it.next().expect("at least one pattern");
                Ok(it.fold(last, |acc, p| Pattern::Pair(Box::new(p), Box::new(acc))))
            }
            other => Err(LangError::at(
                Stage::Parse,
                self.pos(),
                format!("expected parameter pattern, found {other}"),
            )),
        }
    }

    // ---- expressions ---------------------------------------------------

    fn expr_where(&mut self) -> Result<Expr, LangError> {
        let body = self.expr_arrow()?;
        if self.eat(&Tok::Where) {
            self.expect(Tok::Rec)?;
            let mut eqs = Vec::new();
            self.equation(&mut eqs)?;
            while self.eat(&Tok::And) {
                self.equation(&mut eqs)?;
            }
            Ok(Expr::Where {
                body: Box::new(body),
                eqs,
            })
        } else {
            Ok(body)
        }
    }

    fn equation(&mut self, out: &mut Vec<Eq>) -> Result<(), LangError> {
        if self.at(&Tok::Automaton) {
            return self.automaton(out);
        }
        if self.eat(&Tok::Init) {
            let name = self.ident()?;
            self.expect(Tok::Equal)?;
            let pos = self.pos();
            let value = self.const_lit().ok_or_else(|| {
                LangError::at(
                    Stage::Parse,
                    pos,
                    "the right-hand side of `init` must be a constant in the kernel",
                )
            })?;
            out.push(Eq::Init { name, value });
            return Ok(());
        }
        // LHS: ident, (), or a tuple of identifiers. The whole equation is
        // spanned at its left-hand side.
        let eq_pos = self.pos();
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                self.expect(Tok::Equal)?;
                let expr = self.expr_arrow()?;
                out.push(Eq::Def {
                    name,
                    expr: Expr::at(expr, eq_pos),
                });
                Ok(())
            }
            Tok::LParen => {
                self.bump();
                if self.eat(&Tok::RParen) {
                    // () = e: evaluate for effect.
                    self.expect(Tok::Equal)?;
                    let expr = self.expr_arrow()?;
                    let name = self.fresh_var("unit");
                    out.push(Eq::Def {
                        name,
                        expr: Expr::at(expr, eq_pos),
                    });
                    return Ok(());
                }
                let mut names = vec![self.ident()?];
                while self.eat(&Tok::Comma) {
                    names.push(self.ident()?);
                }
                self.expect(Tok::RParen)?;
                self.expect(Tok::Equal)?;
                let expr = self.expr_arrow()?;
                // (a, b, c) = e  ~>  t = e; a = fst t; b = fst (snd t); ...
                let tmp = self.fresh_var("pat");
                out.push(Eq::Def {
                    name: tmp.clone(),
                    expr: Expr::at(expr, eq_pos),
                });
                let n = names.len();
                let mut path = Expr::var(&tmp);
                for (k, name) in names.into_iter().enumerate() {
                    let proj = if k + 1 == n {
                        path.clone()
                    } else {
                        Expr::Op(OpName::Fst, vec![path.clone()])
                    };
                    out.push(Eq::Def {
                        name,
                        expr: Expr::at(proj, eq_pos),
                    });
                    path = Expr::Op(OpName::Snd, vec![path]);
                }
                Ok(())
            }
            other => Err(LangError::at(
                Stage::Parse,
                self.pos(),
                format!("expected equation left-hand side, found {other}"),
            )),
        }
    }

    /// `automaton (| NAME -> do eqs (until e then NAME)* done?)+`
    ///
    /// Each state's equation block must be closed by `done` or by at least
    /// one `until` transition (which disambiguates the automaton's `and`
    /// separators from the enclosing `where rec`'s).
    fn automaton(&mut self, out: &mut Vec<Eq>) -> Result<(), LangError> {
        self.expect(Tok::Automaton)?;
        let mut states = Vec::new();
        while self.eat(&Tok::Bar) {
            let name = self.ident()?;
            self.expect(Tok::Arrow)?;
            self.expect(Tok::Do)?;
            let mut eqs = Vec::new();
            self.equation(&mut eqs)?;
            while self.eat(&Tok::And) {
                self.equation(&mut eqs)?;
            }
            let mut transitions = Vec::new();
            let terminated = loop {
                if self.eat(&Tok::Done) {
                    break true;
                }
                if self.eat(&Tok::Until) {
                    let cond = self.expr_or()?;
                    self.expect(Tok::Then)?;
                    let target = self.ident()?;
                    transitions.push((cond, target));
                    continue;
                }
                break !transitions.is_empty();
            };
            if !terminated {
                return Err(LangError::at(
                    Stage::Parse,
                    self.pos(),
                    "automaton state must end with `done` or an `until … then …` transition",
                ));
            }
            states.push(AutoState {
                name,
                eqs,
                transitions,
            });
        }
        if states.is_empty() {
            return Err(LangError::at(
                Stage::Parse,
                self.pos(),
                "automaton needs at least one `| State -> do …` arm",
            ));
        }
        out.push(Eq::Automaton { states });
        Ok(())
    }

    fn const_lit(&mut self) -> Option<Const> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Some(Const::Int(n))
            }
            Tok::Float(x) => {
                self.bump();
                Some(Const::Float(x))
            }
            Tok::True => {
                self.bump();
                Some(Const::Bool(true))
            }
            Tok::False => {
                self.bump();
                Some(Const::Bool(false))
            }
            Tok::Minus => {
                // Negative numeric constants.
                let save = self.i;
                self.bump();
                match self.peek().clone() {
                    Tok::Int(n) => {
                        self.bump();
                        Some(Const::Int(-n))
                    }
                    Tok::Float(x) => {
                        self.bump();
                        Some(Const::Float(-x))
                    }
                    _ => {
                        self.i = save;
                        None
                    }
                }
            }
            Tok::LParen => {
                let save = self.i;
                self.bump();
                if self.eat(&Tok::RParen) {
                    Some(Const::Unit)
                } else {
                    self.i = save;
                    None
                }
            }
            _ => None,
        }
    }

    fn expr_arrow(&mut self) -> Result<Expr, LangError> {
        let lhs = self.expr_or()?;
        if self.eat(&Tok::Arrow) {
            let rhs = self.expr_arrow()?;
            Ok(Expr::Arrow(Box::new(lhs), Box::new(rhs)))
        } else if self.eat(&Tok::Fby) {
            let rhs = self.expr_arrow()?;
            Ok(Expr::Fby(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn expr_or(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.expr_and()?;
        while self.eat(&Tok::BarBar) {
            let rhs = self.expr_and()?;
            lhs = Expr::Op(OpName::Or, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn expr_and(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.expr_cmp()?;
        while self.eat(&Tok::AmpAmp) {
            let rhs = self.expr_cmp()?;
            lhs = Expr::Op(OpName::And, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn expr_cmp(&mut self) -> Result<Expr, LangError> {
        let lhs = self.expr_add()?;
        let op = match self.peek() {
            Tok::Lt => OpName::Lt,
            Tok::Le => OpName::Le,
            Tok::Gt => OpName::Gt,
            Tok::Ge => OpName::Ge,
            Tok::Equal => OpName::Eq,
            Tok::NotEqual => OpName::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.expr_add()?;
        Ok(Expr::Op(op, vec![lhs, rhs]))
    }

    fn expr_add(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.expr_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => OpName::Add,
                Tok::Minus => OpName::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.expr_mul()?;
            lhs = Expr::Op(op, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn expr_mul(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.expr_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => OpName::Mul,
                Tok::Slash => OpName::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.expr_unary()?;
            lhs = Expr::Op(op, vec![lhs, rhs]);
        }
        Ok(lhs)
    }

    fn expr_unary(&mut self) -> Result<Expr, LangError> {
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                let e = self.expr_unary()?;
                Ok(Expr::Op(OpName::Neg, vec![e]))
            }
            Tok::Not => {
                self.bump();
                let e = self.expr_unary()?;
                Ok(Expr::Op(OpName::Not, vec![e]))
            }
            Tok::Pre => {
                self.bump();
                let e = self.expr_unary()?;
                Ok(Expr::Pre(Box::new(e)))
            }
            Tok::Last => {
                self.bump();
                let x = self.ident()?;
                Ok(Expr::Last(x))
            }
            _ => self.expr_app(),
        }
    }

    fn expr_app(&mut self) -> Result<Expr, LangError> {
        // Identifier followed by a parenthesized argument is an
        // application; builtin names become operators.
        if let Tok::Ident(name) = self.peek().clone() {
            if self.toks[self.i + 1].tok == Tok::LParen {
                let pos = self.pos();
                self.bump(); // ident
                let arg = self.parenthesized()?;
                return Ok(Expr::at(self.make_app(&name, arg)?, pos));
            }
        }
        self.primary()
    }

    fn make_app(&mut self, name: &str, arg: Expr) -> Result<Expr, LangError> {
        match OpName::from_ident(name) {
            Some(op) => {
                let args = flatten_tuple(arg, op.arity());
                if args.len() != op.arity() {
                    return Err(LangError::at(
                        Stage::Parse,
                        self.pos(),
                        format!(
                            "operator `{name}` expects {} argument(s), got {}",
                            op.arity(),
                            args.len()
                        ),
                    ));
                }
                Ok(Expr::Op(op, args))
            }
            None => Ok(Expr::App(name.to_string(), Box::new(arg))),
        }
    }

    /// Parses `( e1 , .. , en )` into a right-nested tuple (or unit).
    fn parenthesized(&mut self) -> Result<Expr, LangError> {
        self.expect(Tok::LParen)?;
        if self.eat(&Tok::RParen) {
            return Ok(Expr::Const(Const::Unit));
        }
        let mut parts = vec![self.expr_where()?];
        while self.eat(&Tok::Comma) {
            parts.push(self.expr_where()?);
        }
        self.expect(Tok::RParen)?;
        let mut it = parts.into_iter().rev();
        let last = it.next().expect("at least one expression");
        Ok(it.fold(last, |acc, e| Expr::pair(e, acc)))
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::int(n))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(Expr::float(x))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::Const(Const::Bool(true)))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::Const(Const::Bool(false)))
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(Expr::Var(s))
            }
            Tok::LParen => self.parenthesized(),
            Tok::Sample => {
                let kw = self.pos();
                self.bump();
                let arg = self.parenthesized()?;
                Ok(Expr::at(Expr::Sample(Box::new(arg)), kw))
            }
            Tok::Value => {
                let kw = self.pos();
                self.bump();
                let arg = self.parenthesized()?;
                Ok(Expr::at(Expr::ValueOp(Box::new(arg)), kw))
            }
            Tok::Factor => {
                let kw = self.pos();
                self.bump();
                let arg = self.parenthesized()?;
                Ok(Expr::at(Expr::Factor(Box::new(arg)), kw))
            }
            Tok::Observe => {
                let kw = self.pos();
                self.bump();
                self.expect(Tok::LParen)?;
                let d = self.expr_arrow()?;
                self.expect(Tok::Comma)?;
                let v = self.expr_arrow()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::at(Expr::Observe(Box::new(d), Box::new(v)), kw))
            }
            Tok::Infer => {
                let kw = self.pos();
                self.bump();
                let pos = self.pos();
                let particles = match self.bump() {
                    Tok::Int(n) if n > 0 => n as usize,
                    other => {
                        return Err(LangError::at(
                            Stage::Parse,
                            pos,
                            format!("`infer` expects a positive particle count, found {other}"),
                        ))
                    }
                };
                let node = self.ident()?;
                let arg = if self.at(&Tok::LParen) {
                    self.parenthesized()?
                } else {
                    // `infer 1000 hmm y` — bare variable argument.
                    Expr::Var(self.ident()?)
                };
                Ok(Expr::at(
                    Expr::Infer {
                        particles,
                        node,
                        arg: Box::new(arg),
                    },
                    kw,
                ))
            }
            Tok::Present => {
                self.bump();
                let cond = self.expr_or()?;
                self.expect(Tok::Arrow)?;
                let then = self.expr_arrow()?;
                self.expect(Tok::Else)?;
                let els = self.expr_arrow()?;
                Ok(Expr::Present {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                })
            }
            Tok::Reset => {
                self.bump();
                let body = self.expr_arrow()?;
                self.expect(Tok::Every)?;
                let every = self.expr_arrow()?;
                Ok(Expr::Reset {
                    body: Box::new(body),
                    every: Box::new(every),
                })
            }
            Tok::If => {
                self.bump();
                let cond = self.expr_arrow()?;
                self.expect(Tok::Then)?;
                let then = self.expr_arrow()?;
                self.expect(Tok::Else)?;
                let els = self.expr_arrow()?;
                Ok(Expr::If {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                })
            }
            other => Err(LangError::at(
                Stage::Parse,
                self.pos(),
                format!("expected expression, found {other}"),
            )),
        }
    }
}

/// Unfolds a right-nested tuple into at most `max` components (operators
/// take their arguments as a tuple in the surface syntax).
fn flatten_tuple(e: Expr, max: usize) -> Vec<Expr> {
    let mut out = Vec::new();
    let mut cur = e;
    while out.len() + 1 < max {
        match cur {
            Expr::Pair(a, b) => {
                out.push(*a);
                cur = *b;
            }
            other => {
                cur = other;
                break;
            }
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_hmm() {
        let src = r#"
            let node hmm y = x where
              rec x = sample (gaussian (0. -> pre x, 2.5))
              and () = observe (gaussian (x, 1.0), y)
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.nodes.len(), 1);
        let hmm = prog.node("hmm").unwrap();
        assert_eq!(hmm.param, Pattern::Var("y".into()));
        match &hmm.body {
            Expr::Where { eqs, .. } => assert_eq!(eqs.len(), 2),
            other => panic!("expected where, got {other:?}"),
        }
    }

    #[test]
    fn parses_infer_driver() {
        let src = r#"
            let node main y = d where
              rec d = infer 1000 hmm y
        "#;
        let prog = parse_program(src).unwrap();
        let main = prog.node("main").unwrap();
        match &main.body {
            Expr::Where { eqs, .. } => match &eqs[0] {
                Eq::Def { expr, .. } => {
                    assert!(matches!(
                        expr.peel(),
                        Expr::Infer {
                            particles: 1000,
                            ..
                        }
                    ));
                    // Equation spans point at the left-hand side.
                    assert!(expr.span().is_some());
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("expected where, got {other:?}"),
        }
    }

    #[test]
    fn arrow_is_right_associative_and_loose() {
        let e = parse_expr("0 -> 1 + 2 -> 3").unwrap();
        match e {
            Expr::Arrow(a, rest) => {
                assert_eq!(*a, Expr::int(0));
                assert!(matches!(*rest, Expr::Arrow(_, _)));
            }
            other => panic!("expected arrow, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Op(OpName::Add, args) => {
                assert_eq!(args[0], Expr::int(1));
                assert!(matches!(&args[1], Expr::Op(OpName::Mul, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn operators_by_name_check_arity() {
        assert!(parse_expr("gaussian(0., 1.)").is_ok());
        assert!(parse_expr("gaussian(0.)").is_err());
        let e = parse_expr("exp(1.0)").unwrap();
        assert!(matches!(e.peel(), Expr::Op(OpName::Exp, _)));
    }

    #[test]
    fn node_application_vs_operator() {
        let e = parse_expr("integr(a, b)").unwrap();
        match e.peel() {
            Expr::App(name, arg) => {
                assert_eq!(name, "integr");
                assert!(matches!(&**arg, Expr::Pair(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tuple_equations_desugar_to_projections() {
        let src = r#"
            let node f a = p where
              rec (p, v) = tracker(a)
        "#;
        let prog = parse_program(src).unwrap();
        match &prog.nodes[0].body {
            Expr::Where { eqs, .. } => {
                assert_eq!(eqs.len(), 3);
                assert!(matches!(&eqs[1], Eq::Def { name, expr } if name == "p"
                        && matches!(expr.peel(), Expr::Op(OpName::Fst, _))));
                assert!(matches!(&eqs[2], Eq::Def { name, expr } if name == "v"
                        && matches!(expr.peel(), Expr::Op(OpName::Snd, _))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unit_equations_get_fresh_names() {
        let src = r#"
            let node f y = x where
              rec x = 1.0
              and () = observe (gaussian (x, 1.0), y)
        "#;
        let prog = parse_program(src).unwrap();
        match &prog.nodes[0].body {
            Expr::Where { eqs, .. } => {
                assert!(eqs[1].name().starts_with("_unit"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn init_requires_constant() {
        let ok = parse_program("let node f x = y where rec init y = 0.5 and y = x");
        assert!(ok.is_ok());
        let bad = parse_program("let node f x = y where rec init y = x + 1. and y = x");
        assert!(bad.is_err());
    }

    #[test]
    fn present_and_reset_and_if() {
        let e = parse_expr("present c -> a else b").unwrap();
        assert!(matches!(e, Expr::Present { .. }));
        let e = parse_expr("reset x + 1. every c").unwrap();
        assert!(matches!(e, Expr::Reset { .. }));
        let e = parse_expr("if c then 1. else 2.").unwrap();
        assert!(matches!(e, Expr::If { .. }));
    }

    #[test]
    fn negative_init_constants() {
        let prog = parse_program("let node f x = y where rec init y = -1.5 and y = x").unwrap();
        match &prog.nodes[0].body {
            Expr::Where { eqs, .. } => {
                assert_eq!(
                    eqs[0],
                    Eq::Init {
                        name: "y".into(),
                        value: Const::Float(-1.5)
                    }
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_program("let node f = 3").unwrap_err();
        assert!(err.pos.is_some());
        assert_eq!(err.stage, Stage::Parse);
    }
}
