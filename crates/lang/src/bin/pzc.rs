//! `pzc` — the ProbZelus compiler/runner CLI.
//!
//! ```text
//! pzc check FILE [--lint] [--json]        # full pipeline + static analyses
//! pzc explain PZ0xxx                      # long-form help for a diagnostic
//! pzc emit  FILE [--opt] [--tape]         # print the compiled µF code / tape
//! pzc opt   FILE [--json]                 # optimize; show before/after kernel
//! pzc run   FILE NODE [options]           # run a node over an input stream
//! pzc schema                              # the --json output contract (Markdown)
//!
//! check options:
//!   --lint               also run style lints (unused-stream, ...)
//!   --json               one JSON object per line: nodes, then diagnostics
//!   --explain PZ0xxx     alias for the explain subcommand
//!
//! run options:
//!   --inputs v1,v2,...   per-step inputs (floats, ints, bools, or () )
//!   --steps N            number of steps (default: #inputs, or 10)
//!   --method M           sds | bds | pf | ds | is      (default sds)
//!   --particles N        for probabilistic nodes       (default 1000)
//!   --seed S             RNG seed                      (default 0)
//!   --opt                run through the optimizing pass pipeline
//!   --backend B          interp | tape                 (default interp)
//! ```
//!
//! `emit --tape` lowers every node's per-particle transition to the flat
//! instruction tape of the `tape` execution backend and pretty-prints it.
//! Nodes that refuse to lower (drivers whose step embeds `infer`, or any
//! construct the tape cannot express) print the refusal reason instead —
//! those engines keep interpreting at runtime.
//!
//! `check` exits nonzero only on error-severity diagnostics; warnings and
//! lints are reported but do not fail the build. Deterministic nodes are
//! stepped directly by `run` (their embedded `infer` sites use the
//! selected method); probabilistic nodes are wrapped in an engine and
//! their per-step posterior mean/variance is printed.
//!
//! `opt` runs the optimizing µF pass pipeline (constant folding, dead
//! stream elimination, common-subexpression factoring, particle-invariant
//! hoisting), reports what each pass did as `PZ05xx`/`PZ06xx` lint
//! diagnostics, and prints the scheduled kernel before and after. The
//! passes are posterior-preserving: `run --opt` produces bit-identical
//! output.

use probzelus_core::infer::Method;
use probzelus_core::Value;
use probzelus_lang::diag;
use probzelus_lang::eval::{ExecBackend, Options};
use probzelus_lang::muf::MufValue;
use probzelus_lang::muf_pretty::print_muf_program;
use probzelus_lang::pipeline::{
    check_source, compile_source, compile_source_opt, optimize_source, Compiled,
};
use probzelus_lang::pretty::print_program;
use probzelus_lang::transform::opt::OptConfig;
use probzelus_lang::{Code, Kind, Severity};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("pzc: {msg}");
            ExitCode::from(1)
        }
    }
}

fn usage() -> String {
    "usage: pzc <check|explain|emit|opt|run|schema> FILE|CODE [NODE] [--lint] [--json] \
     [--explain PZ0xxx] [--inputs v1,v2,..] [--steps N] \
     [--method sds|bds|pf|ds|is] [--particles N] [--seed S] [--opt] [--tape] \
     [--backend interp|tape]"
        .to_string()
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pos = Vec::new();
    let mut inputs: Option<String> = None;
    let mut steps: Option<usize> = None;
    let mut method = Method::StreamingDs;
    let mut particles = 1000usize;
    let mut seed = 0u64;
    let mut lint = false;
    let mut json = false;
    let mut optimize = false;
    let mut tape = false;
    let mut backend = ExecBackend::Interp;
    let mut explain: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut flag_value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--lint" => lint = true,
            "--json" => json = true,
            "--opt" => optimize = true,
            "--tape" => tape = true,
            "--backend" => {
                backend = match flag_value("--backend")?.as_str() {
                    "interp" => ExecBackend::Interp,
                    "tape" => ExecBackend::Tape,
                    other => return Err(format!("unknown backend `{other}`")),
                }
            }
            "--explain" => explain = Some(flag_value("--explain")?),
            "--inputs" => inputs = Some(flag_value("--inputs")?),
            "--steps" => {
                steps = Some(
                    flag_value("--steps")?
                        .parse()
                        .map_err(|e| format!("--steps: {e}"))?,
                )
            }
            "--particles" => {
                particles = flag_value("--particles")?
                    .parse()
                    .map_err(|e| format!("--particles: {e}"))?
            }
            "--seed" => {
                seed = flag_value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--method" => {
                method = match flag_value("--method")?.as_str() {
                    "sds" => Method::StreamingDs,
                    "bds" => Method::BoundedDs,
                    "pf" => Method::ParticleFilter,
                    "ds" => Method::ClassicDs,
                    "is" => Method::Importance,
                    other => return Err(format!("unknown method `{other}`")),
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`\n{}", usage()))
            }
            other => pos.push(other.to_string()),
        }
    }

    if let Some(code) = explain {
        return explain_code(&code);
    }

    if pos.first().map(String::as_str) == Some("schema") {
        print!("{}", schema_md());
        return Ok(ExitCode::SUCCESS);
    }

    let (cmd, arg) = match (pos.first(), pos.get(1)) {
        (Some(c), Some(f)) => (c.clone(), f.clone()),
        _ => return Err(usage()),
    };

    if cmd == "explain" {
        return explain_code(&arg);
    }

    let file = arg;
    let src = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;

    let compile = |src: &str| -> Result<Compiled, String> {
        if optimize {
            compile_source_opt(src).map_err(|e| format!("{file}: {e}"))
        } else {
            compile_source(src).map_err(|e| format!("{file}: {e}"))
        }
    };

    match cmd.as_str() {
        "check" => Ok(check(&file, &src, lint, json)),
        "opt" => Ok(opt_cmd(&file, &src, json)),
        "emit" => {
            let compiled = compile(&src)?;
            if tape {
                let options = Options {
                    method,
                    seed,
                    backend: ExecBackend::Tape,
                };
                let mut names: Vec<&String> = compiled.kinds.keys().collect();
                names.sort();
                for name in names {
                    println!("=== {name} ===");
                    match compiled
                        .lower_node(name, options)
                        .map_err(|e| e.to_string())?
                    {
                        Ok(prog) => print!("{}", prog.render()),
                        Err(reason) => println!("not lowered: {reason}"),
                    }
                }
            } else {
                print!("{}", print_muf_program(&compiled.muf));
            }
            Ok(ExitCode::SUCCESS)
        }
        "run" => {
            let compiled = compile(&src)?;
            let node = pos
                .get(2)
                .cloned()
                .ok_or_else(|| format!("run needs a node name\n{}", usage()))?;
            let parsed_inputs = parse_inputs(inputs.as_deref())?;
            let n = steps.unwrap_or_else(|| parsed_inputs.as_ref().map_or(10, Vec::len));
            let stream = |t: usize| -> Value {
                match &parsed_inputs {
                    Some(v) if !v.is_empty() => v[t % v.len()].clone(),
                    _ => Value::Unit,
                }
            };
            let options = Options {
                method,
                seed,
                backend,
            };
            match compiled.kinds.get(node.as_str()) {
                None => Err(format!("unknown node `{node}`")),
                Some(Kind::D) => {
                    let mut inst = compiled
                        .instantiate(&node, options)
                        .map_err(|e| e.to_string())?;
                    for t in 0..n {
                        let out = inst.step(stream(t)).map_err(|e| e.to_string())?;
                        println!("{t}: {}", render(&out));
                    }
                    Ok(ExitCode::SUCCESS)
                }
                Some(Kind::P) => {
                    let mut eng = compiled
                        .infer_node(&node, particles, options)
                        .map_err(|e| e.to_string())?;
                    println!("running {node} under {} with {particles} particles", method);
                    for t in 0..n {
                        let post = eng.step(&stream(t)).map_err(|e| e.to_string())?;
                        println!(
                            "{t}: mean {:.6}  var {:.6}",
                            post.mean_float(),
                            post.variance_float()
                        );
                    }
                    Ok(ExitCode::SUCCESS)
                }
            }
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

/// `pzc schema`: the machine-readable output contract, as Markdown.
/// `docs/CHECK_JSON.md` is the checked-in copy; CI regenerates this and
/// diffs, so the document cannot drift from the binary that emits the
/// lines (the same pattern as `obsreport --schema-md` / docs/METRICS.md).
/// The diagnostic-code list is read from the live catalog.
fn schema_md() -> String {
    let mut codes = String::new();
    for (i, code) in diag::ALL_CODES.iter().enumerate() {
        if i > 0 {
            codes.push_str(", ");
        }
        codes.push_str(&format!("`{code}`"));
    }
    format!(
        r#"# `pzc` machine-readable output

<!-- Generated by `pzc schema`. Do not edit by hand: CI diffs this file
     against the binary's output. Regenerate with
       cargo run --release -p probzelus-lang --bin pzc -- schema > docs/CHECK_JSON.md -->

`pzc check FILE [--lint] --json` prints one JSON object per line to
stdout: first one **node** object per compiled node (sorted by name) —
omitted entirely when the pipeline fails before compilation — then one
**diagnostic** object per diagnostic. `pzc opt FILE --json` prints the
optimizer's diagnostic objects followed by exactly one **opt-summary**
object. No other line shapes exist; a consumer can dispatch on the
`kind` field for node/opt-summary lines and on the presence of `code`
for diagnostics.

## `node` objects (`pzc check --json`)

| field | type | meaning |
|---|---|---|
| `kind` | string | always `"node"` |
| `name` | string | node name as written in the source |
| `node_kind` | string | `"D"` (deterministic) or `"P"` (probabilistic), Fig. 7 kinds |
| `input` | string | rendered input type |
| `output` | string | rendered output type |
| `verdict` | string | boundedness verdict: `Bounded(k)` or `Unbounded(witness)` |
| `effect` | string | effect-lattice analysis result: `"pure"`, `"det"`, or `"prob"` |
| `invariant` | number | count of particle-invariant equations (hoist candidates) |

## diagnostic objects (`pzc check --json`, `pzc opt --json`)

| field | type | meaning |
|---|---|---|
| `code` | string | one of the catalog codes listed below |
| `severity` | string | `"error"`, `"warning"`, or `"lint"` |
| `stage` | string? | pipeline stage: `lex`, `parse`, `kind`, `type`, `init`, `schedule`, `compile`, `eval`; absent on stageless lints |
| `message` | string | human-readable one-liner |
| `pos` | object? | primary position `{{"line":N,"col":N}}` (1-based); absent when unknown |
| `labels` | array? | secondary positions `[{{"line":N,"col":N,"message":"..."}}]`; absent when empty |
| `notes` | array? | free-form follow-up strings; absent when empty |

Catalog codes ({n} today; `pzc explain CODE` gives the long form):
{codes}.

## `opt-summary` objects (`pzc opt --json`)

| field | type | meaning |
|---|---|---|
| `kind` | string | always `"opt-summary"` |
| `folded` | number | equations folded to compile-time constants |
| `removed` | number | dead streams eliminated |
| `cse` | number | common subexpressions factored into fresh streams |
| `hoisted` | array | names of nodes whose particle-invariant equations moved into a shared per-tick prelude (sorted) |

## Exit status

`pzc check` exits nonzero only when at least one diagnostic has
severity `error`; warnings and lints report but pass. `pzc opt` never
fails on lints — its diagnostics describe transformations performed,
not defects.
"#,
        n = diag::ALL_CODES.len(),
    )
}

/// `pzc check`: pipeline + boundedness analysis (+ lints), diagnostics to
/// stderr, node summary to stdout. Exits nonzero only on hard errors.
fn check(file: &str, src: &str, lint: bool, json: bool) -> ExitCode {
    let checked = check_source(src, lint);
    if json {
        if let Some(compiled) = &checked.compiled {
            let mut names: Vec<&String> = compiled.kinds.keys().collect();
            names.sort();
            for name in names {
                let sig = &compiled.sigs[name];
                let verdict = compiled
                    .bounded
                    .get(name)
                    .map_or_else(|| "unknown".to_string(), |v| v.to_string());
                let effect = compiled.effects.node_effect(name);
                let invariant = compiled
                    .effects
                    .invariant
                    .get(name.as_str())
                    .map_or(0, std::collections::BTreeSet::len);
                println!(
                    "{{\"kind\":\"node\",\"name\":\"{name}\",\"node_kind\":\"{}\",\
                     \"input\":\"{}\",\"output\":\"{}\",\"verdict\":\"{verdict}\",\
                     \"effect\":\"{effect}\",\"invariant\":{invariant}}}",
                    compiled.kinds[name], sig.input, sig.output
                );
            }
        }
        for d in &checked.diagnostics {
            println!("{}", d.to_json());
        }
    } else {
        for d in &checked.diagnostics {
            eprintln!("{}", d.render(file, src));
        }
        if let Some(compiled) = &checked.compiled {
            println!("{file}: ok ({} nodes)", compiled.kinds.len());
            let mut names: Vec<&String> = compiled.kinds.keys().collect();
            names.sort();
            for name in names {
                let sig = &compiled.sigs[name];
                let verdict = compiled
                    .bounded
                    .get(name)
                    .map_or_else(|| "unknown".to_string(), |v| v.to_string());
                let effect = compiled.effects.node_effect(name);
                let invariant = compiled
                    .effects
                    .invariant
                    .get(name.as_str())
                    .map_or(0, std::collections::BTreeSet::len);
                println!(
                    "  {:<4} node {name} : {} -> {}  [{verdict}] [{effect}, {invariant} invariant]",
                    compiled.kinds[name].to_string(),
                    sig.input,
                    sig.output
                );
            }
        }
        let (errors, warnings, lints) =
            checked
                .diagnostics
                .iter()
                .fold((0usize, 0usize, 0usize), |(e, w, l), d| match d.severity {
                    Severity::Error => (e + 1, w, l),
                    Severity::Warning => (e, w + 1, l),
                    Severity::Lint => (e, w, l + 1),
                });
        if errors + warnings + lints > 0 {
            eprintln!("{file}: {errors} error(s), {warnings} warning(s), {lints} lint(s)");
        }
    }
    if checked.has_errors() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// `pzc opt`: run the optimizing pass pipeline and show its work — the
/// scheduled kernel before and after, every pass's diagnostic, and a
/// summary line. Never fails the build (the passes are advisory surface;
/// a program that optimizes to nothing is still a valid program).
fn opt_cmd(file: &str, src: &str, json: bool) -> ExitCode {
    let optimized = match optimize_source(src, &OptConfig::default()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::from(1);
        }
    };
    let report = &optimized.report;
    let mut hoists: Vec<String> = report
        .plans
        .values()
        .map(|p| format!("{} ({} eqs)", p.node, p.hoisted.len()))
        .collect();
    hoists.sort();
    if json {
        for d in &report.diagnostics {
            println!("{}", d.to_json());
        }
        println!(
            "{{\"kind\":\"opt-summary\",\"folded\":{},\"removed\":{},\"cse\":{},\
             \"hoisted\":[{}]}}",
            report.folded,
            report.removed,
            report.cse,
            {
                let mut nodes: Vec<String> = report
                    .plans
                    .values()
                    .map(|p| format!("\"{}\"", p.node))
                    .collect();
                nodes.sort();
                nodes.join(",")
            }
        );
    } else {
        println!("--- scheduled kernel (before) ---");
        print!("{}", print_program(&optimized.baseline.kernel));
        println!("--- optimized kernel (after) ---");
        print!("{}", print_program(&optimized.compiled.kernel));
        for d in &report.diagnostics {
            eprintln!("{}", d.render(file, src));
        }
        println!(
            "{file}: {} folded, {} dead stream(s) removed, {} subexpression(s) factored, \
             hoisted: {}",
            report.folded,
            report.removed,
            report.cse,
            if hoists.is_empty() {
                "none".to_string()
            } else {
                hoists.join(", ")
            }
        );
    }
    ExitCode::SUCCESS
}

fn explain_code(spec: &str) -> Result<ExitCode, String> {
    let code = Code::parse(spec).ok_or_else(|| {
        format!(
            "unknown diagnostic code `{spec}` (known: {})",
            diag::ALL_CODES
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    let text = diag::explain(code).ok_or_else(|| format!("no explanation for `{code}`"))?;
    println!("{text}");
    Ok(ExitCode::SUCCESS)
}

fn parse_inputs(spec: Option<&str>) -> Result<Option<Vec<Value>>, String> {
    let Some(spec) = spec else { return Ok(None) };
    let mut out = Vec::new();
    for item in spec.split(',') {
        let item = item.trim();
        let v = if item == "()" {
            Value::Unit
        } else if item == "true" {
            Value::Bool(true)
        } else if item == "false" {
            Value::Bool(false)
        } else if let Ok(n) = item.parse::<i64>() {
            if item.contains('.') {
                Value::Float(n as f64)
            } else {
                Value::Int(n)
            }
        } else if let Ok(x) = item.parse::<f64>() {
            Value::Float(x)
        } else {
            return Err(format!("cannot parse input `{item}`"));
        };
        out.push(v);
    }
    Ok(Some(out))
}

fn render(v: &MufValue) -> String {
    match v {
        MufValue::V(v) => v.to_string(),
        MufValue::Nil => "nil".to_string(),
        MufValue::Posterior(p) => format!(
            "posterior(mean {:.6}, var {:.6})",
            p.mean_float(),
            p.variance_float()
        ),
        MufValue::Tuple(xs) => {
            format!("({})", xs.iter().map(render).collect::<Vec<_>>().join(", "))
        }
        other => format!("<{}>", other.kind()),
    }
}
