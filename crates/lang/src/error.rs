//! Compilation-pipeline errors with source positions.

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Which pipeline stage rejected the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Kind checking (deterministic vs probabilistic, Fig. 7).
    Kind,
    /// Data-type checking.
    Type,
    /// Initialization analysis.
    Init,
    /// Scheduling / causality analysis.
    Schedule,
    /// Compilation to muF.
    Compile,
    /// muF evaluation.
    Eval,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Stage::Lex => "lexical error",
            Stage::Parse => "parse error",
            Stage::Kind => "kind error",
            Stage::Type => "type error",
            Stage::Init => "initialization error",
            Stage::Schedule => "causality error",
            Stage::Compile => "compilation error",
            Stage::Eval => "evaluation error",
        };
        f.write_str(s)
    }
}

/// An error from any stage of the language pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    /// The failing stage.
    pub stage: Stage,
    /// Human-readable description.
    pub message: String,
    /// Source position, when known.
    pub pos: Option<Pos>,
    /// Diagnostic code (`PZ0xxx`); stage-default when `None`.
    pub code: Option<crate::diag::Code>,
    /// Secondary positions with explanatory messages.
    pub labels: Vec<(Pos, String)>,
    /// Free-form notes rendered after the snippet.
    pub notes: Vec<String>,
}

impl LangError {
    /// Creates an error without position information.
    pub fn new(stage: Stage, message: impl Into<String>) -> Self {
        LangError {
            stage,
            message: message.into(),
            pos: None,
            code: None,
            labels: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Creates an error at a source position.
    pub fn at(stage: Stage, pos: Pos, message: impl Into<String>) -> Self {
        LangError {
            pos: Some(pos),
            ..LangError::new(stage, message)
        }
    }

    /// Sets the diagnostic code.
    #[must_use]
    pub fn with_code(mut self, code: crate::diag::Code) -> Self {
        self.code = Some(code);
        self
    }

    /// Sets the primary position if not already known.
    #[must_use]
    pub fn with_pos(mut self, pos: Option<Pos>) -> Self {
        if self.pos.is_none() {
            self.pos = pos;
        }
        self
    }

    /// Adds a secondary label.
    #[must_use]
    pub fn with_label(mut self, pos: Pos, message: impl Into<String>) -> Self {
        self.labels.push((pos, message.into()));
        self
    }

    /// Adds a note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{} at {}: {}", self.stage, p, self.message),
            None => write!(f, "{}: {}", self.stage, self.message),
        }
    }
}

impl std::error::Error for LangError {}

impl From<probzelus_core::RuntimeError> for LangError {
    fn from(e: probzelus_core::RuntimeError) -> Self {
        LangError::new(Stage::Eval, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_position() {
        let e = LangError::at(Stage::Parse, Pos { line: 3, col: 7 }, "unexpected token");
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected token");
        let e = LangError::new(Stage::Kind, "sample outside infer");
        assert_eq!(e.to_string(), "kind error: sample outside infer");
    }

    #[test]
    fn runtime_errors_convert() {
        let re = probzelus_core::RuntimeError::DivisionByZero;
        let le: LangError = re.into();
        assert_eq!(le.stage, Stage::Eval);
    }
}
