//! Compilation of the (kernel, scheduled) language to µF: the functions
//! C(·) and A(·) of Fig. 11 / Fig. 20 / Fig. 21.
//!
//! Every expression compiles to a µF transition function `fun s -> (v, s')`
//! and an allocation expression for its initial state. A node `f` yields
//! two globals: `f_step = fun (s, x) -> C(body)(s)` and `f_init = fun () ->
//! A(body)` (a thunk, so each instantiation gets fresh state — in
//! particular a fresh inference engine for each `infer` site).
//!
//! One deliberate deviation from the paper's Fig. 21: we allocate
//! `A(f(e)) = (A(e), f_init)` — argument state first — to match the
//! destructuring order of Fig. 20's `C(f(e))`, whose printed allocation
//! `(f_init, A(e))` appears to be a typo.

use crate::ast::{Const, Eq, Expr, NodeDecl, Pattern, Program};
use crate::error::{LangError, Stage};
use crate::muf::{MufDef, MufExpr, MufPat, MufProgram};
use crate::transform::is_kernel;
use crate::transform::opt::HoistPlan;
use std::collections::{HashMap, HashSet};

/// Compiles a kernel, scheduled program to µF.
///
/// # Errors
///
/// Rejects programs containing derived forms (compile after
/// [`crate::transform::desugar_program`]) or duplicate definitions.
pub fn compile_program(p: &Program) -> Result<MufProgram, LangError> {
    compile_program_with(p, &HashMap::new())
}

/// Like [`compile_program`], but compiles each `infer` site whose target
/// node has a [`HoistPlan`] into the split prelude/main form: the
/// particle-invariant prelude (including the site argument) runs once per
/// tick on the coordinator, and every particle steps the residual
/// `{node}#main` with the broadcast prelude output. The program must
/// already contain the plan's generated `{node}#prelude` / `{node}#main`
/// nodes (the optimizer inserts them).
///
/// # Errors
///
/// As for [`compile_program`].
pub fn compile_program_with(
    p: &Program,
    plans: &HashMap<String, HoistPlan>,
) -> Result<MufProgram, LangError> {
    let mut c = Compiler { fresh: 0, plans };
    let mut defs = Vec::new();
    for node in &p.nodes {
        if !is_kernel(&node.body) {
            return Err(LangError::new(
                Stage::Compile,
                format!("node `{}` contains derived forms; desugar first", node.name),
            ));
        }
        let (step, init) = c.compile_node(node)?;
        defs.push(MufDef {
            name: step_name(&node.name),
            expr: step,
        });
        defs.push(MufDef {
            name: init_name(&node.name),
            expr: init,
        });
    }
    // One wrap global per planned node, for driver-facing engines
    // (`infer_node`): maps this tick's prelude output to the per-particle
    // transition closure, `fun hv -> fun (s, x) -> main_step (s, (x, hv))`.
    for node in &p.nodes {
        if let Some(plan) = plans.get(&node.name) {
            let (hv, s, x) = (c.fresh("v"), c.fresh("s"), c.fresh("x"));
            defs.push(MufDef {
                name: wrap_name(&node.name),
                expr: fun(
                    MufPat::var(&hv),
                    fun(
                        MufPat::pair(MufPat::var(&s), MufPat::var(&x)),
                        app(
                            var(step_name(&plan.main_node)),
                            tuple(vec![var(&s), tuple(vec![var(&x), var(&hv)])]),
                        ),
                    ),
                ),
            });
        }
    }
    Ok(MufProgram { defs })
}

/// The global name of a node's transition function.
pub fn step_name(node: &str) -> String {
    format!("{node}_step")
}

/// The global name of a node's allocation thunk.
pub fn init_name(node: &str) -> String {
    format!("{node}_init")
}

/// The global name of a planned node's driver-side wrap function (takes
/// the original node's name, not `{node}#main`).
pub fn wrap_name(node: &str) -> String {
    format!("{node}#wrap")
}

/// The variable carrying `last x` values in compiled code. The `#` cannot
/// appear in source identifiers, so there is no capture risk.
fn last_var(x: &str) -> String {
    format!("{x}#last")
}

struct Compiler<'p> {
    fresh: u32,
    plans: &'p HashMap<String, HoistPlan>,
}

fn var(name: impl Into<String>) -> MufExpr {
    MufExpr::Var(name.into())
}

fn app(f: MufExpr, x: MufExpr) -> MufExpr {
    MufExpr::App(Box::new(f), Box::new(x))
}

fn let_(pat: MufPat, bound: MufExpr, body: MufExpr) -> MufExpr {
    MufExpr::Let(pat, Box::new(bound), Box::new(body))
}

fn fun(pat: MufPat, body: MufExpr) -> MufExpr {
    MufExpr::Fun(pat, std::rc::Rc::new(body))
}

fn tuple(items: Vec<MufExpr>) -> MufExpr {
    MufExpr::Tuple(items)
}

/// Initialized variables and defining equations of a normalized `where`
/// block.
type NormalizedEqs = (Vec<(String, Const)>, Vec<(String, Expr)>);

/// Adds `x = last x` for initialized variables without a defining
/// equation, preserving scheduling (the added equations depend on nothing
/// instantaneous). Returns `(inits, defs)`.
fn normalize_where(eqs: &[Eq]) -> Result<NormalizedEqs, LangError> {
    let mut inits = Vec::new();
    let mut defs = Vec::new();
    let mut seen_init = HashSet::new();
    let mut seen_def = HashSet::new();
    for eq in eqs {
        match eq {
            Eq::Init { name, value } => {
                if !seen_init.insert(name.clone()) {
                    return Err(LangError::new(
                        Stage::Compile,
                        format!("duplicate `init {name}`"),
                    ));
                }
                inits.push((name.clone(), value.clone()));
            }
            Eq::Def { name, expr } => {
                if !seen_def.insert(name.clone()) {
                    return Err(LangError::new(
                        Stage::Compile,
                        format!("duplicate definition of `{name}`"),
                    ));
                }
                defs.push((name.clone(), expr.clone()));
            }
            Eq::Automaton { .. } => {
                return Err(LangError::new(
                    Stage::Compile,
                    "automaton must be expanded before compilation",
                ))
            }
        }
    }
    for (name, _) in &inits {
        if !seen_def.contains(name) {
            defs.push((name.clone(), Expr::Last(name.clone())));
        }
    }
    Ok((inits, defs))
}

impl Compiler<'_> {
    fn fresh(&mut self, hint: &str) -> String {
        self.fresh += 1;
        format!("{hint}%{}", self.fresh)
    }

    fn compile_node(&mut self, node: &NodeDecl) -> Result<(MufExpr, MufExpr), LangError> {
        let s = self.fresh("s");
        let step = fun(
            MufPat::pair(MufPat::var(&s), pattern_to_pat(&node.param)),
            app(self.c(&node.body)?, var(&s)),
        );
        let init = fun(MufPat::Unit, self.a(&node.body)?);
        Ok((step, init))
    }

    /// C(·): the transition function of an expression (Fig. 20).
    fn c(&mut self, e: &Expr) -> Result<MufExpr, LangError> {
        match e {
            Expr::At(inner, _) => self.c(inner),
            Expr::Const(c) => {
                let s = self.fresh("s");
                Ok(fun(
                    MufPat::var(&s),
                    tuple(vec![MufExpr::Const(c.clone()), var(&s)]),
                ))
            }
            Expr::Var(x) => {
                let s = self.fresh("s");
                Ok(fun(MufPat::var(&s), tuple(vec![var(x.clone()), var(&s)])))
            }
            Expr::Last(x) => {
                let s = self.fresh("s");
                Ok(fun(MufPat::var(&s), tuple(vec![var(last_var(x)), var(&s)])))
            }
            Expr::Pair(e1, e2) => {
                let (s1, s2) = (self.fresh("s"), self.fresh("s"));
                let (v1, v2) = (self.fresh("v"), self.fresh("v"));
                let (n1, n2) = (self.fresh("s"), self.fresh("s"));
                let c1 = self.c(e1)?;
                let c2 = self.c(e2)?;
                Ok(fun(
                    MufPat::Tuple(vec![MufPat::var(&s1), MufPat::var(&s2)]),
                    let_(
                        MufPat::pair(MufPat::var(&v1), MufPat::var(&n1)),
                        app(c1, var(&s1)),
                        let_(
                            MufPat::pair(MufPat::var(&v2), MufPat::var(&n2)),
                            app(c2, var(&s2)),
                            tuple(vec![
                                tuple(vec![var(&v1), var(&v2)]),
                                tuple(vec![var(&n1), var(&n2)]),
                            ]),
                        ),
                    ),
                ))
            }
            Expr::Op(op, args) => {
                let compiled: Vec<MufExpr> =
                    args.iter().map(|a| self.c(a)).collect::<Result<_, _>>()?;
                let ss: Vec<String> = args.iter().map(|_| self.fresh("s")).collect();
                let vs: Vec<String> = args.iter().map(|_| self.fresh("v")).collect();
                let ns: Vec<String> = args.iter().map(|_| self.fresh("s")).collect();
                let state_pat = if ss.len() == 1 {
                    MufPat::var(&ss[0])
                } else {
                    MufPat::Tuple(ss.iter().map(MufPat::var).collect())
                };
                let next_state = if ns.len() == 1 {
                    var(&ns[0])
                } else {
                    tuple(ns.iter().map(var).collect())
                };
                let mut body = tuple(vec![
                    MufExpr::Op(*op, vs.iter().map(var).collect()),
                    next_state,
                ]);
                for i in (0..args.len()).rev() {
                    body = let_(
                        MufPat::pair(MufPat::var(&vs[i]), MufPat::var(&ns[i])),
                        app(compiled[i].clone(), var(&ss[i])),
                        body,
                    );
                }
                Ok(fun(state_pat, body))
            }
            Expr::App(f, arg) => {
                let (s1, s2) = (self.fresh("s"), self.fresh("s"));
                let (v1, v2) = (self.fresh("v"), self.fresh("v"));
                let (n1, n2) = (self.fresh("s"), self.fresh("s"));
                let carg = self.c(arg)?;
                Ok(fun(
                    MufPat::Tuple(vec![MufPat::var(&s1), MufPat::var(&s2)]),
                    let_(
                        MufPat::pair(MufPat::var(&v1), MufPat::var(&n1)),
                        app(carg, var(&s1)),
                        let_(
                            MufPat::pair(MufPat::var(&v2), MufPat::var(&n2)),
                            app(var(step_name(f)), tuple(vec![var(&s2), var(&v1)])),
                            tuple(vec![var(&v2), tuple(vec![var(&n1), var(&n2)])]),
                        ),
                    ),
                ))
            }
            Expr::Where { body, eqs } => self.c_where(body, eqs),
            Expr::If { cond, then, els } => {
                let (s, s1, s2) = (self.fresh("s"), self.fresh("s"), self.fresh("s"));
                let (v, v1, v2) = (self.fresh("v"), self.fresh("v"), self.fresh("v"));
                let (n, n1, n2) = (self.fresh("s"), self.fresh("s"), self.fresh("s"));
                let cc = self.c(cond)?;
                let c1 = self.c(then)?;
                let c2 = self.c(els)?;
                Ok(fun(
                    MufPat::Tuple(vec![MufPat::var(&s), MufPat::var(&s1), MufPat::var(&s2)]),
                    let_(
                        MufPat::pair(MufPat::var(&v), MufPat::var(&n)),
                        app(cc, var(&s)),
                        let_(
                            MufPat::pair(MufPat::var(&v1), MufPat::var(&n1)),
                            app(c1, var(&s1)),
                            let_(
                                MufPat::pair(MufPat::var(&v2), MufPat::var(&n2)),
                                app(c2, var(&s2)),
                                tuple(vec![
                                    MufExpr::Select(
                                        Box::new(var(&v)),
                                        Box::new(var(&v1)),
                                        Box::new(var(&v2)),
                                    ),
                                    tuple(vec![var(&n), var(&n1), var(&n2)]),
                                ]),
                            ),
                        ),
                    ),
                ))
            }
            Expr::Present { cond, then, els } => {
                let (s, s1, s2) = (self.fresh("s"), self.fresh("s"), self.fresh("s"));
                let (v, v1, v2) = (self.fresh("v"), self.fresh("v"), self.fresh("v"));
                let (n, n1, n2) = (self.fresh("s"), self.fresh("s"), self.fresh("s"));
                let cc = self.c(cond)?;
                let c1 = self.c(then)?;
                let c2 = self.c(els)?;
                Ok(fun(
                    MufPat::Tuple(vec![MufPat::var(&s), MufPat::var(&s1), MufPat::var(&s2)]),
                    let_(
                        MufPat::pair(MufPat::var(&v), MufPat::var(&n)),
                        app(cc, var(&s)),
                        MufExpr::If(
                            Box::new(var(&v)),
                            Box::new(let_(
                                MufPat::pair(MufPat::var(&v1), MufPat::var(&n1)),
                                app(c1, var(&s1)),
                                tuple(vec![var(&v1), tuple(vec![var(&n), var(&n1), var(&s2)])]),
                            )),
                            Box::new(let_(
                                MufPat::pair(MufPat::var(&v2), MufPat::var(&n2)),
                                app(c2, var(&s2)),
                                tuple(vec![var(&v2), tuple(vec![var(&n), var(&s1), var(&n2)])]),
                            )),
                        ),
                    ),
                ))
            }
            Expr::Reset { body, every } => {
                let (s0, s1, s2) = (self.fresh("s"), self.fresh("s"), self.fresh("s"));
                let (v1, v2) = (self.fresh("v"), self.fresh("v"));
                let (n1, n2) = (self.fresh("s"), self.fresh("s"));
                let cb = self.c(body)?;
                let ce = self.c(every)?;
                Ok(fun(
                    MufPat::Tuple(vec![MufPat::var(&s0), MufPat::var(&s1), MufPat::var(&s2)]),
                    let_(
                        MufPat::pair(MufPat::var(&v2), MufPat::var(&n2)),
                        app(ce, var(&s2)),
                        let_(
                            MufPat::pair(MufPat::var(&v1), MufPat::var(&n1)),
                            app(
                                cb,
                                MufExpr::If(
                                    Box::new(var(&v2)),
                                    Box::new(MufExpr::Freshen(Box::new(var(&s0)))),
                                    Box::new(var(&s1)),
                                ),
                            ),
                            tuple(vec![var(&v1), tuple(vec![var(&s0), var(&n1), var(&n2)])]),
                        ),
                    ),
                ))
            }
            Expr::Sample(d) => {
                let s = self.fresh("s");
                let (mu, n) = (self.fresh("v"), self.fresh("s"));
                let cd = self.c(d)?;
                Ok(fun(
                    MufPat::var(&s),
                    let_(
                        MufPat::pair(MufPat::var(&mu), MufPat::var(&n)),
                        app(cd, var(&s)),
                        tuple(vec![MufExpr::Sample(Box::new(var(&mu))), var(&n)]),
                    ),
                ))
            }
            Expr::Observe(d, o) => {
                let (s1, s2) = (self.fresh("s"), self.fresh("s"));
                let (v1, v2) = (self.fresh("v"), self.fresh("v"));
                let (n1, n2) = (self.fresh("s"), self.fresh("s"));
                let cd = self.c(d)?;
                let co = self.c(o)?;
                Ok(fun(
                    MufPat::Tuple(vec![MufPat::var(&s1), MufPat::var(&s2)]),
                    let_(
                        MufPat::pair(MufPat::var(&v1), MufPat::var(&n1)),
                        app(cd, var(&s1)),
                        let_(
                            MufPat::pair(MufPat::var(&v2), MufPat::var(&n2)),
                            app(co, var(&s2)),
                            let_(
                                MufPat::Wildcard,
                                MufExpr::Observe(Box::new(var(&v1)), Box::new(var(&v2))),
                                tuple(vec![
                                    MufExpr::Const(Const::Unit),
                                    tuple(vec![var(&n1), var(&n2)]),
                                ]),
                            ),
                        ),
                    ),
                ))
            }
            Expr::Factor(w) => {
                let s = self.fresh("s");
                let (v, n) = (self.fresh("v"), self.fresh("s"));
                let cw = self.c(w)?;
                Ok(fun(
                    MufPat::var(&s),
                    let_(
                        MufPat::pair(MufPat::var(&v), MufPat::var(&n)),
                        app(cw, var(&s)),
                        let_(
                            MufPat::Wildcard,
                            MufExpr::Factor(Box::new(var(&v))),
                            tuple(vec![MufExpr::Const(Const::Unit), var(&n)]),
                        ),
                    ),
                ))
            }
            Expr::ValueOp(x) => {
                let s = self.fresh("s");
                let (v, n) = (self.fresh("v"), self.fresh("s"));
                let cx = self.c(x)?;
                Ok(fun(
                    MufPat::var(&s),
                    let_(
                        MufPat::pair(MufPat::var(&v), MufPat::var(&n)),
                        app(cx, var(&s)),
                        tuple(vec![MufExpr::ValueOp(Box::new(var(&v))), var(&n)]),
                    ),
                ))
            }
            Expr::Infer {
                particles,
                node,
                arg,
            } => {
                let sigma = self.fresh("sigma");
                let plans = self.plans;
                if let Some(plan) = plans.get(node) {
                    let wrap = self.wrap_embedded(plan);
                    let pre = self.prelude_transition(plan, arg)?;
                    Ok(fun(
                        MufPat::var(&sigma),
                        MufExpr::Infer {
                            particles: *particles,
                            body: Box::new(wrap),
                            state: Box::new(var(&sigma)),
                            prelude: Some(Box::new(pre)),
                        },
                    ))
                } else {
                    let inner = self.c(&Expr::App(node.clone(), arg.clone()))?;
                    Ok(fun(
                        MufPat::var(&sigma),
                        MufExpr::Infer {
                            particles: *particles,
                            body: Box::new(inner),
                            state: Box::new(var(&sigma)),
                            prelude: None,
                        },
                    ))
                }
            }
            Expr::Arrow(_, _) | Expr::Pre(_) | Expr::Fby(_, _) => Err(LangError::new(
                Stage::Compile,
                "derived form reached the compiler; desugar first",
            )),
        }
    }

    /// The per-tick prelude transition of an optimized `infer` site:
    /// `fun (sa, sp) -> let (va, na) = C(arg)(sa) in
    ///                  let (vp, np) = prelude_step (sp, va) in
    ///                  ((va, vp), (na, np))` —
    /// advances the site argument and the hoisted equations once on the
    /// coordinator, yielding the broadcast value `(va, vp)`.
    fn prelude_transition(&mut self, plan: &HoistPlan, arg: &Expr) -> Result<MufExpr, LangError> {
        let (sa, sp) = (self.fresh("s"), self.fresh("s"));
        let (va, na) = (self.fresh("v"), self.fresh("s"));
        let (vp, np) = (self.fresh("v"), self.fresh("s"));
        let carg = self.c(arg)?;
        Ok(fun(
            MufPat::pair(MufPat::var(&sa), MufPat::var(&sp)),
            let_(
                MufPat::pair(MufPat::var(&va), MufPat::var(&na)),
                app(carg, var(&sa)),
                let_(
                    MufPat::pair(MufPat::var(&vp), MufPat::var(&np)),
                    app(
                        var(step_name(&plan.prelude_node)),
                        tuple(vec![var(&sp), var(&va)]),
                    ),
                    tuple(vec![
                        tuple(vec![var(&va), var(&vp)]),
                        tuple(vec![var(&na), var(&np)]),
                    ]),
                ),
            ),
        ))
    }

    /// The wrap function of an embedded optimized site: maps this tick's
    /// broadcast prelude output to the per-particle transition closure,
    /// `fun hv -> fun s -> main_step (s, hv)`.
    fn wrap_embedded(&mut self, plan: &HoistPlan) -> MufExpr {
        let (hv, s) = (self.fresh("v"), self.fresh("s"));
        fun(
            MufPat::var(&hv),
            fun(
                MufPat::var(&s),
                app(
                    var(step_name(&plan.main_node)),
                    tuple(vec![var(&s), var(&hv)]),
                ),
            ),
        )
    }

    fn c_where(&mut self, body: &Expr, eqs: &[Eq]) -> Result<MufExpr, LangError> {
        let (inits, defs) = normalize_where(eqs)?;
        let ms: Vec<String> = inits.iter().map(|_| self.fresh("m")).collect();
        let ts: Vec<String> = defs.iter().map(|_| self.fresh("s")).collect();
        let t0 = self.fresh("s");
        let vs: Vec<String> = defs.iter().map(|_| self.fresh("v")).collect();
        let ns: Vec<String> = defs.iter().map(|_| self.fresh("s")).collect();
        let (v0, n0) = (self.fresh("v"), self.fresh("s"));

        let state_pat = MufPat::Tuple(vec![
            MufPat::Tuple(ms.iter().map(MufPat::var).collect()),
            MufPat::Tuple(ts.iter().map(MufPat::var).collect()),
            MufPat::var(&t0),
        ]);

        // Innermost: the result tuple.
        let final_state = tuple(vec![
            tuple(inits.iter().map(|(x, _)| var(x.clone())).collect()),
            tuple(ns.iter().map(var).collect()),
            var(&n0),
        ]);
        let mut inner = tuple(vec![var(&v0), final_state]);
        inner = let_(
            MufPat::pair(MufPat::var(&v0), MufPat::var(&n0)),
            app(self.c(body)?, var(&t0)),
            inner,
        );
        // Equations, innermost-last.
        for i in (0..defs.len()).rev() {
            let (name, expr) = &defs[i];
            let compiled = self.c(expr)?;
            inner = let_(
                MufPat::pair(MufPat::var(&vs[i]), MufPat::var(&ns[i])),
                app(compiled, var(&ts[i])),
                let_(MufPat::var(name.clone()), var(&vs[i]), inner),
            );
        }
        // last-variable bindings.
        for (i, (x, _)) in inits.iter().enumerate().rev() {
            inner = let_(MufPat::var(last_var(x)), var(&ms[i]), inner);
        }
        Ok(fun(state_pat, inner))
    }

    /// A(·): the initial state of an expression (Fig. 21).
    fn a(&mut self, e: &Expr) -> Result<MufExpr, LangError> {
        match e {
            Expr::At(inner, _) => self.a(inner),
            Expr::Const(_) | Expr::Var(_) | Expr::Last(_) => Ok(MufExpr::Const(Const::Unit)),
            Expr::Pair(e1, e2) => Ok(tuple(vec![self.a(e1)?, self.a(e2)?])),
            Expr::Op(_, args) => {
                if args.len() == 1 {
                    self.a(&args[0])
                } else {
                    Ok(tuple(
                        args.iter().map(|a| self.a(a)).collect::<Result<_, _>>()?,
                    ))
                }
            }
            Expr::App(f, arg) => Ok(tuple(vec![
                self.a(arg)?,
                app(var(init_name(f)), MufExpr::Const(Const::Unit)),
            ])),
            Expr::Where { body, eqs } => {
                let (inits, defs) = normalize_where(eqs)?;
                Ok(tuple(vec![
                    tuple(
                        inits
                            .iter()
                            .map(|(_, c)| MufExpr::Const(c.clone()))
                            .collect(),
                    ),
                    tuple(
                        defs.iter()
                            .map(|(_, e)| self.a(e))
                            .collect::<Result<_, _>>()?,
                    ),
                    self.a(body)?,
                ]))
            }
            Expr::If { cond, then, els } | Expr::Present { cond, then, els } => {
                Ok(tuple(vec![self.a(cond)?, self.a(then)?, self.a(els)?]))
            }
            Expr::Reset { body, every } => {
                Ok(tuple(vec![self.a(body)?, self.a(body)?, self.a(every)?]))
            }
            Expr::Sample(d) => self.a(d),
            Expr::Observe(d, o) => Ok(tuple(vec![self.a(d)?, self.a(o)?])),
            Expr::Factor(w) => self.a(w),
            Expr::ValueOp(x) => self.a(x),
            Expr::Infer {
                particles,
                node,
                arg,
            } => {
                let plans = self.plans;
                if let Some(plan) = plans.get(node) {
                    // Prelude state first so nested engine allocations in
                    // `A(arg)` draw seeds in the same order as the
                    // unoptimized `(A(arg), f_init ())` form.
                    let pre_state = tuple(vec![
                        self.a(arg)?,
                        app(
                            var(init_name(&plan.prelude_node)),
                            MufExpr::Const(Const::Unit),
                        ),
                    ]);
                    let pre = self.prelude_transition(plan, arg)?;
                    Ok(MufExpr::EngineInit {
                        particles: *particles,
                        init: Box::new(app(
                            var(init_name(&plan.main_node)),
                            MufExpr::Const(Const::Unit),
                        )),
                        body: Box::new(self.wrap_embedded(plan)),
                        prelude: Some(Box::new(tuple(vec![pre_state, pre]))),
                    })
                } else {
                    let inner_app = Expr::App(node.clone(), arg.clone());
                    Ok(MufExpr::EngineInit {
                        particles: *particles,
                        init: Box::new(self.a(&inner_app)?),
                        body: Box::new(self.c(&inner_app)?),
                        prelude: None,
                    })
                }
            }
            Expr::Arrow(_, _) | Expr::Pre(_) | Expr::Fby(_, _) => Err(LangError::new(
                Stage::Compile,
                "derived form reached the compiler; desugar first",
            )),
        }
    }
}

fn pattern_to_pat(p: &Pattern) -> MufPat {
    match p {
        Pattern::Var(x) => MufPat::var(x),
        Pattern::Unit => MufPat::Unit,
        Pattern::Pair(a, b) => MufPat::pair(pattern_to_pat(a), pattern_to_pat(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::schedule::schedule_program;
    use crate::transform::desugar_program;

    fn compile(src: &str) -> Result<MufProgram, LangError> {
        let p = parse_program(src).unwrap();
        let p = desugar_program(&p);
        let p = schedule_program(&p).unwrap();
        compile_program(&p)
    }

    #[test]
    fn produces_step_and_init_per_node() {
        let m = compile("let node f x = x + 1.").unwrap();
        let names: Vec<&str> = m.defs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["f_step", "f_init"]);
        assert!(matches!(m.defs[0].expr, MufExpr::Fun(_, _)));
        assert!(matches!(m.defs[1].expr, MufExpr::Fun(_, _)));
    }

    #[test]
    fn rejects_sugared_programs() {
        let p = parse_program("let node f x = 0. -> x").unwrap();
        assert!(compile_program(&p).is_err());
    }

    #[test]
    fn missing_definition_for_init_gets_last_equation() {
        let (inits, defs) = normalize_where(&[Eq::Init {
            name: "x".into(),
            value: Const::Float(0.0),
        }])
        .unwrap();
        assert_eq!(inits.len(), 1);
        assert_eq!(defs.len(), 1);
        assert!(matches!(&defs[0].1, Expr::Last(x) if x == "x"));
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let err = compile("let node f x = y where rec y = x and y = x").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn infer_compiles_to_engine_forms() {
        let m = compile(
            r#"
            let node m y = sample(gaussian(y, 1.))
            let node main y = infer 10 m y
            "#,
        )
        .unwrap();
        fn contains_infer(e: &MufExpr) -> bool {
            match e {
                MufExpr::Infer { .. } => true,
                MufExpr::Fun(_, b) => contains_infer(b),
                MufExpr::App(a, b) => contains_infer(a) || contains_infer(b),
                MufExpr::Let(_, a, b) => contains_infer(a) || contains_infer(b),
                MufExpr::Tuple(xs) => xs.iter().any(contains_infer),
                _ => false,
            }
        }
        fn contains_engine_init(e: &MufExpr) -> bool {
            match e {
                MufExpr::EngineInit { .. } => true,
                MufExpr::Fun(_, b) => contains_engine_init(b),
                MufExpr::Tuple(xs) => xs.iter().any(contains_engine_init),
                MufExpr::App(a, b) => contains_engine_init(a) || contains_engine_init(b),
                _ => false,
            }
        }
        let main_step = &m.defs.iter().find(|d| d.name == "main_step").unwrap().expr;
        let main_init = &m.defs.iter().find(|d| d.name == "main_init").unwrap().expr;
        assert!(contains_infer(main_step));
        assert!(contains_engine_init(main_init));
    }
}
