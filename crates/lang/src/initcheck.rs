//! Initialization analysis.
//!
//! A simplified version of the Zelus initialization check (§3.2 "static
//! analyses"): a fixpoint abstract interpretation that computes, for every
//! expression, whether its value is *defined at the first instant* —
//! i.e. can never be the `nil` that an unguarded `pre` produces. The
//! analysis exploits the precise rule for `->` (only the left operand
//! matters at instant 0), so it must run **before** desugaring turns `->`
//! into a strict conditional.
//!
//! Runtime complements this with nil-poisoning: `nil` propagates through
//! strict operators and is only an error at an observation sink. The
//! analysis guarantees accepted programs never deliver `nil` to a sink:
//! `sample` / `observe` / `factor` / `value` arguments, `present` and
//! `reset` conditions, node-application arguments, `infer` inputs, and
//! every node's result must be defined at instant 0.

use crate::ast::{Const, Eq, Expr, Program};
use crate::diag::Code;
use crate::error::{LangError, Pos, Stage};
use std::collections::HashMap;

/// Checks the whole (sugared or kernel) program.
///
/// # Errors
///
/// [`crate::error::Stage::Init`] errors naming the offending construct.
pub fn check_program(p: &Program) -> Result<(), LangError> {
    for node in &p.nodes {
        let mut env: HashMap<String, bool> = HashMap::new();
        for v in node.param.vars() {
            env.insert(v.to_string(), true);
        }
        let inits = HashMap::new();
        let defined = analyze(&node.body, &mut env, &inits, true, None)?;
        if !defined {
            return Err(LangError::new(
                Stage::Init,
                format!(
                    "the result of node `{}` may be uninitialized at the first instant \
                     (guard `pre` with `->`)",
                    node.name
                ),
            )
            .with_code(Code::INIT_UNDEFINED)
            .with_pos(node.body.span()));
        }
    }
    Ok(())
}

/// Computes whether `e` is defined at instant 0 and checks sink
/// requirements (when `check` is true; the fixpoint passes run with
/// `check` false to avoid reporting mid-iteration states).
fn analyze(
    e: &Expr,
    env: &mut HashMap<String, bool>,
    inits: &HashMap<String, Const>,
    check: bool,
    pos: Option<Pos>,
) -> Result<bool, LangError> {
    match e {
        Expr::At(inner, p) => analyze(inner, env, inits, check, Some(*p)),
        Expr::Const(Const::Nil) => Ok(false),
        Expr::Const(_) => Ok(true),
        Expr::Var(x) => Ok(*env.get(x.as_str()).unwrap_or(&true)),
        Expr::Last(x) => match inits.get(x.as_str()) {
            Some(Const::Nil) => Ok(false),
            Some(_) => Ok(true),
            None => Err(LangError::new(
                Stage::Init,
                format!("`last {x}` requires an `init {x} = c` equation in scope"),
            )
            .with_code(Code::INIT_NO_INIT)
            .with_pos(pos)),
        },
        Expr::Pair(a, b) => {
            let da = analyze(a, env, inits, check, pos)?;
            let db = analyze(b, env, inits, check, pos)?;
            Ok(da && db)
        }
        Expr::Op(_, args) => {
            let mut d = true;
            for a in args {
                d &= analyze(a, env, inits, check, pos)?;
            }
            Ok(d)
        }
        Expr::App(f, arg) => {
            let d = analyze(arg, env, inits, check, pos)?;
            if check && !d {
                return Err(LangError::new(
                    Stage::Init,
                    format!("the argument of node `{f}` may be uninitialized at the first instant"),
                )
                .with_code(Code::INIT_UNDEFINED)
                .with_pos(pos));
            }
            // Node results are themselves checked to be initialized.
            Ok(true)
        }
        Expr::Where { body, eqs } => {
            let mut inner_env = env.clone();
            let mut inner_inits = inits.clone();
            for eq in eqs {
                match eq {
                    Eq::Init { name, value } => {
                        inner_inits.insert(name.clone(), value.clone());
                    }
                    Eq::Def { name, .. } => {
                        inner_env.insert(name.clone(), true);
                    }
                    Eq::Automaton { .. } => {
                        return Err(LangError::new(
                            Stage::Init,
                            "automaton must be expanded before the initialization analysis",
                        ))
                    }
                }
            }
            // Greatest-fixpoint iteration: definedness only decreases.
            loop {
                let mut changed = false;
                for eq in eqs {
                    if let Eq::Def { name, expr } = eq {
                        let d = analyze(expr, &mut inner_env, &inner_inits, false, pos)?;
                        let cur = inner_env[name.as_str()];
                        if d != cur {
                            inner_env.insert(name.clone(), d);
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            if check {
                // Final pass with sink checking enabled.
                for eq in eqs {
                    if let Eq::Def { expr, .. } = eq {
                        analyze(expr, &mut inner_env, &inner_inits, true, pos)?;
                    }
                }
            }
            analyze(body, &mut inner_env, &inner_inits, check, pos)
        }
        Expr::Present { cond, then, els } => {
            let dc = analyze(cond, env, inits, check, pos)?;
            if check && !dc {
                return Err(LangError::new(
                    Stage::Init,
                    "the condition of `present` may be uninitialized at the first instant",
                )
                .with_code(Code::INIT_UNDEFINED)
                .with_pos(pos));
            }
            let dt = analyze(then, env, inits, check, pos)?;
            let de = analyze(els, env, inits, check, pos)?;
            // Precision for expanded automata: when the condition's value
            // at instant 0 is statically known (e.g. `last st = 0` with
            // `init st = 0`), only the selected branch contributes to
            // definedness — the other branch is not executed at instant 0.
            match eval_instant0(cond, inits) {
                Some(Const::Bool(true)) => Ok(dc && dt),
                Some(Const::Bool(false)) => Ok(dc && de),
                _ => Ok(dc && dt && de),
            }
        }
        Expr::If { cond, then, els } => {
            let dc = analyze(cond, env, inits, check, pos)?;
            let dt = analyze(then, env, inits, check, pos)?;
            let de = analyze(els, env, inits, check, pos)?;
            Ok(dc && dt && de)
        }
        Expr::Reset { body, every } => {
            let de = analyze(every, env, inits, check, pos)?;
            if check && !de {
                return Err(LangError::new(
                    Stage::Init,
                    "the condition of `reset … every` may be uninitialized at the first instant",
                )
                .with_code(Code::INIT_UNDEFINED)
                .with_pos(pos));
            }
            analyze(body, env, inits, check, pos)
        }
        Expr::Sample(d) => {
            let dd = analyze(d, env, inits, check, pos)?;
            if check && !dd {
                return Err(LangError::new(
                    Stage::Init,
                    "the distribution of `sample` may be uninitialized at the first instant",
                )
                .with_code(Code::INIT_UNDEFINED)
                .with_pos(pos));
            }
            Ok(true)
        }
        Expr::Observe(d, v) => {
            let dd = analyze(d, env, inits, check, pos)?;
            let dv = analyze(v, env, inits, check, pos)?;
            if check && !(dd && dv) {
                return Err(LangError::new(
                    Stage::Init,
                    "the arguments of `observe` may be uninitialized at the first instant",
                )
                .with_code(Code::INIT_UNDEFINED)
                .with_pos(pos));
            }
            Ok(true)
        }
        Expr::Factor(w) => {
            let dw = analyze(w, env, inits, check, pos)?;
            if check && !dw {
                return Err(LangError::new(
                    Stage::Init,
                    "the argument of `factor` may be uninitialized at the first instant",
                )
                .with_code(Code::INIT_UNDEFINED)
                .with_pos(pos));
            }
            Ok(true)
        }
        Expr::ValueOp(x) => analyze(x, env, inits, check, pos),
        Expr::Infer { arg, .. } => {
            let da = analyze(arg, env, inits, check, pos)?;
            if check && !da {
                return Err(LangError::new(
                    Stage::Init,
                    "the input of `infer` may be uninitialized at the first instant",
                )
                .with_code(Code::INIT_UNDEFINED)
                .with_pos(pos));
            }
            Ok(true)
        }
        Expr::Arrow(a, b) => {
            // Precise rule: only the left operand matters at instant 0,
            // but the right is still traversed for its own sinks.
            let da = analyze(a, env, inits, check, pos)?;
            let _ = analyze(b, env, inits, check, pos)?;
            Ok(da)
        }
        Expr::Fby(a, b) => {
            let da = analyze(a, env, inits, check, pos)?;
            let _ = analyze(b, env, inits, check, pos)?;
            Ok(da)
        }
        Expr::Pre(x) => {
            let _ = analyze(x, env, inits, check, pos)?;
            Ok(false)
        }
    }
}

/// Constant-folds an expression *at the first instant*: literals are
/// themselves and `last x` is `x`'s `init` constant. Returns `None` when
/// the value is not statically known. Used to make the `present` rule
/// precise on the code the automaton expansion generates.
fn eval_instant0(e: &Expr, inits: &HashMap<String, Const>) -> Option<Const> {
    use crate::ast::OpName;
    match e {
        Expr::At(inner, _) => eval_instant0(inner, inits),
        Expr::Const(Const::Nil) => None,
        Expr::Const(c) => Some(c.clone()),
        Expr::Last(x) => match inits.get(x.as_str()) {
            Some(Const::Nil) | None => None,
            Some(c) => Some(c.clone()),
        },
        Expr::Op(op, args) => {
            let vals: Vec<Const> = args
                .iter()
                .map(|a| eval_instant0(a, inits))
                .collect::<Option<_>>()?;
            match (op, vals.as_slice()) {
                (OpName::Eq, [a, b]) => Some(Const::Bool(a == b)),
                (OpName::Ne, [a, b]) => Some(Const::Bool(a != b)),
                (OpName::Not, [Const::Bool(b)]) => Some(Const::Bool(!b)),
                (OpName::And, [Const::Bool(a), Const::Bool(b)]) => Some(Const::Bool(*a && *b)),
                (OpName::Or, [Const::Bool(a), Const::Bool(b)]) => Some(Const::Bool(*a || *b)),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<(), LangError> {
        check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn guarded_pre_is_accepted() {
        check("let node f x = y where rec y = 0. -> pre y + x").unwrap();
    }

    #[test]
    fn unguarded_pre_output_is_rejected() {
        let err = check("let node f x = pre x").unwrap_err();
        assert_eq!(err.stage, Stage::Init);
        assert!(err.message.contains("uninitialized"));
    }

    #[test]
    fn unguarded_pre_under_sample_is_rejected() {
        let err = check("let node f y = sample(gaussian(pre y, 1.))").unwrap_err();
        assert_eq!(err.stage, Stage::Init);
    }

    #[test]
    fn the_paper_hmm_is_accepted() {
        check(
            r#"
            let node hmm y = x where
              rec x = sample (gaussian (0. -> pre x, 1.))
              and () = observe (gaussian (x, 1.), y)
            "#,
        )
        .unwrap();
    }

    #[test]
    fn pre_inside_arrow_right_operand_is_fine() {
        // `pre x` only evaluated after the first instant.
        check("let node f x = 0. -> pre x").unwrap();
    }

    #[test]
    fn chained_unguarded_pre_detected_through_variables() {
        // y is nil at instant 0, and z copies y.
        let err = check("let node f x = z where rec y = pre x and z = y").unwrap_err();
        assert_eq!(err.stage, Stage::Init);
    }

    #[test]
    fn last_requires_init() {
        let err = check("let node f x = last x").unwrap_err();
        assert!(err.message.contains("init"));
        check("let node f x = last y where rec init y = 0. and y = x").unwrap();
    }

    #[test]
    fn present_condition_must_be_initialized() {
        let err = check("let node f c = present pre c -> 1. else 2.").unwrap_err();
        assert_eq!(err.stage, Stage::Init);
    }

    #[test]
    fn intermediate_nil_is_allowed_when_guarded_downstream() {
        // y is nil at instant 0 but only consumed under an arrow guard.
        check("let node f x = 0. -> y where rec y = pre x").unwrap();
    }
}
