//! Flat instruction tape for µF transition functions.
//!
//! The tree-walking interpreter ([`crate::eval`]) re-traverses the µF AST
//! of the transition closure for every particle at every tick — an
//! overhead of roughly 50× over the native models on small kernels. This
//! module holds the runtime half of the tape backend: a transition
//! closure is lowered once (see [`crate::transform::lower`]) to a
//! preallocated `Vec<Op>` of register-indexed opcodes over a dense
//! register file of [`MufValue`] slots. All names are interned to `u32`
//! register indices during lowering, so the steady state performs zero
//! `HashMap` lookups, zero `Env` clones, and no per-tick allocation
//! beyond what the operators themselves produce.
//!
//! The interpreter remains the semantic oracle: lowering is
//! total-or-nothing per engine, every opcode mirrors the corresponding
//! `eval` branch bit-for-bit (including error messages and RNG
//! consumption order), and any construct the lowering does not support
//! leaves the engine interpreting, indistinguishable except for speed.

use crate::ast::OpName;
use crate::error::{LangError, Stage};
use crate::eval::{Interp, ModelState, ProbSlot};
use crate::muf::{MufPat, MufValue};
use probzelus_core::prob::ProbCtx;
use probzelus_core::value::Value;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A register index into the tape's dense register file.
pub type Reg = u32;

/// One tape instruction. Registers are read non-destructively (values are
/// cloned out where semantics require ownership), so the same register
/// file is reused by every particle and every tick.
#[derive(Debug, Clone)]
pub enum Op {
    /// `dst <- v` (constant pool; executed once when the tape is built).
    Const {
        /// Destination register.
        dst: Reg,
        /// The constant value.
        v: MufValue,
    },
    /// `dst <- src` (join-point copies for `if` branches).
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Unary operator.
    UnOp {
        /// Operator.
        op: OpName,
        /// Destination register.
        dst: Reg,
        /// Operand.
        a: Reg,
    },
    /// Binary operator.
    BinOp {
        /// Operator.
        op: OpName,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Ternary operator (`prob`).
    TernOp {
        /// Operator.
        op: OpName,
        /// Destination register.
        dst: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
        /// Third operand.
        c: Reg,
    },
    /// `dst <- (r1, .., rn)` — materializes a tuple value.
    MkTuple {
        /// Destination register.
        dst: Reg,
        /// Element registers.
        items: Vec<Reg>,
    },
    /// `dst <- src[idx/arity]` — runtime tuple destructuring with the
    /// exact semantics of the interpreter's pattern binding (core pairs
    /// for arity 2, `nil` poison spreading, arity checking).
    Proj {
        /// Destination register.
        dst: Reg,
        /// Tuple register.
        src: Reg,
        /// Element index.
        idx: u32,
        /// Expected tuple arity.
        arity: u32,
    },
    /// Strict conditional value selection (`Select` semantics: `nil`
    /// condition yields `nil`).
    Select {
        /// Destination register.
        dst: Reg,
        /// Condition register.
        cond: Reg,
        /// Then-value register.
        t: Reg,
        /// Else-value register.
        f: Reg,
    },
    /// `dst <- sample(dist)` through the engine's [`ProbCtx`].
    Sample {
        /// Destination register.
        dst: Reg,
        /// Distribution register.
        dist: Reg,
    },
    /// `observe(dist, obs)` through the engine's [`ProbCtx`].
    Observe {
        /// Distribution register.
        dist: Reg,
        /// Observation register.
        obs: Reg,
    },
    /// `factor(w)` through the engine's [`ProbCtx`].
    Factor {
        /// Log-weight register.
        w: Reg,
    },
    /// `dst <- value(src)` — force realization (§5.3).
    Value {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst <- deep_clone(src)` (the µF `Freshen` of compiled `reset`).
    Freshen {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Unconditional jump to an op index.
    Jmp {
        /// Target op index.
        target: u32,
    },
    /// Jump when the condition is false; errors on `nil` exactly like the
    /// lazy `If` form.
    JmpIfNot {
        /// Condition register.
        cond: Reg,
        /// Target op index.
        target: u32,
    },
    /// Out-of-line call to a statically-known closure the lowering chose
    /// not to inline (recursion-depth or op budget): dispatches back into
    /// the interpreter for the callee only.
    CallSummary {
        /// Destination register.
        dst: Reg,
        /// The closure value (stable: resolved from globals at lowering).
        f: MufValue,
        /// Argument register.
        arg: Reg,
    },
    /// Dynamic application of a register-held closure (escapes to the
    /// interpreter, like [`Op::CallSummary`] but with a runtime callee).
    Eval {
        /// Destination register.
        dst: Reg,
        /// Closure register.
        f: Reg,
        /// Argument register.
        arg: Reg,
    },
    /// End of tape.
    Halt,
}

/// Where the tick's output value lives: tuple outputs are kept unpacked
/// in their element registers and folded to nested core pairs only at the
/// very end (mirroring [`MufValue::as_core`]).
#[derive(Debug, Clone)]
pub enum OutSpec {
    /// A single register.
    Reg(Reg),
    /// A tuple of sub-outputs.
    Tuple(Vec<OutSpec>),
}

/// The tuple structure of the externalized state, derived from the
/// transition's state pattern. State is stored as one flat slot per leaf.
#[derive(Debug, Clone)]
pub enum StateShape {
    /// An opaque state slot.
    Leaf,
    /// A state tuple.
    Node(Vec<StateShape>),
}

impl StateShape {
    /// The shape a pattern destructures.
    pub fn of_pat(p: &MufPat) -> StateShape {
        match p {
            MufPat::Tuple(ps) => StateShape::Node(ps.iter().map(StateShape::of_pat).collect()),
            MufPat::Var(_) | MufPat::Wildcard | MufPat::Unit => StateShape::Leaf,
        }
    }

    /// Number of leaf slots.
    pub fn leaves(&self) -> usize {
        match self {
            StateShape::Leaf => 1,
            StateShape::Node(xs) => xs.iter().map(StateShape::leaves).sum(),
        }
    }
}

/// A lowered transition function: the instruction tape plus its register
/// conventions.
#[derive(Debug, Clone)]
pub struct TapeProgram {
    /// Constant pool, run once into the register file when the tape is
    /// installed (every `Const` op lives here; the body never re-executes
    /// them).
    pub consts: Vec<Op>,
    /// The instruction stream, ending in [`Op::Halt`].
    pub ops: Vec<Op>,
    /// Total number of registers.
    pub num_regs: u32,
    /// Register receiving the tick input (driver-facing transitions).
    pub input: Option<Reg>,
    /// Registers the flat state slots are moved into before execution
    /// (depth-first leaves of `shape`).
    pub state_in: Vec<Reg>,
    /// Registers holding the successor state after execution.
    pub state_out: Vec<Reg>,
    /// Whether `state_out` registers are pairwise distinct (move out
    /// instead of clone).
    pub state_out_unique: bool,
    /// Where the output value lives.
    pub out: OutSpec,
    /// Captured-environment registers, refreshed from the engine's
    /// closure slot whenever it is rewritten: `(name, reg)`.
    pub env_slots: Vec<(String, Reg)>,
    /// The initial state, pre-split into flat slots.
    pub init_slots: Vec<MufValue>,
    /// State tuple structure.
    pub shape: StateShape,
    /// `Rc::as_ptr` of the lowered closure body — per-tick re-closing
    /// evaluates the same `fun` node, so pointer equality certifies the
    /// tape still matches the installed closure.
    pub body_ptr: usize,
    /// Debug names per register (empty string when unnamed).
    pub reg_names: Vec<String>,
}

/// The shared runtime state of one engine's tape: the program plus the
/// register file every particle reuses (particles run sequentially, so a
/// single file suffices; values are moved in and out per step).
#[derive(Debug)]
pub struct TapeShared {
    /// The lowered program.
    pub prog: TapeProgram,
    regs: RefCell<Vec<MufValue>>,
}

impl TapeShared {
    fn new(prog: TapeProgram) -> TapeShared {
        let mut regs = vec![MufValue::Nil; prog.num_regs as usize];
        for op in &prog.consts {
            if let Op::Const { dst, v } = op {
                regs[*dst as usize] = v.clone();
            }
        }
        TapeShared {
            prog,
            regs: RefCell::new(regs),
        }
    }

    /// Bytes of scratch currently held by the register file (the vector
    /// itself plus embedded tuple spines). Constant across steady-state
    /// ticks for Bounded(k) programs — the scratch-plateau witness.
    pub fn scratch_bytes(&self) -> usize {
        fn held(v: &MufValue) -> usize {
            match v {
                MufValue::Tuple(xs) => {
                    xs.capacity() * std::mem::size_of::<MufValue>()
                        + xs.iter().map(held).sum::<usize>()
                }
                _ => 0,
            }
        }
        let regs = self.regs.borrow();
        regs.capacity() * std::mem::size_of::<MufValue>() + regs.iter().map(held).sum::<usize>()
    }
}

/// Per-engine lowering cell, shared between a [`crate::eval::MufEngine`]
/// and its particle models. Lowering happens lazily at the first particle
/// step (after the prelude hook has installed the real per-particle
/// closure) and is attempted exactly once; failure pins the engine to the
/// interpreter.
#[derive(Debug, Default)]
pub struct TapeCell {
    attempt: RefCell<Option<Result<Rc<TapeShared>, String>>>,
    /// Bumped by the engine whenever the closure slot is rewritten.
    epoch: Cell<u64>,
    /// Last epoch whose environment was copied into the register file.
    synced: Cell<u64>,
}

impl TapeCell {
    /// Signals that the engine's closure slot changed (environment
    /// registers must be refreshed before the next execution).
    pub fn bump(&self) {
        self.epoch.set(self.epoch.get().wrapping_add(1));
    }

    /// The installed tape, if lowering has succeeded.
    pub fn ready(&self) -> Option<Rc<TapeShared>> {
        match &*self.attempt.borrow() {
            Some(Ok(shared)) => Some(shared.clone()),
            _ => None,
        }
    }

    /// Human-readable status: `Ok(())` when lowered, `Err(reason)` when
    /// pending or fallen back.
    pub fn status(&self) -> Result<(), String> {
        match &*self.attempt.borrow() {
            None => Err("tape not lowered yet (no step taken)".into()),
            Some(Ok(_)) => Ok(()),
            Some(Err(e)) => Err(e.clone()),
        }
    }

    /// Pins the engine to the interpreter with the given reason (used on
    /// mid-run closure shape changes).
    fn poison(&self, reason: String) {
        *self.attempt.borrow_mut() = Some(Err(reason));
    }

    /// Returns the tape, lowering the current closure on first use.
    /// `None` means this engine executes on the interpreter.
    pub(crate) fn ensure(
        &self,
        interp: &Rc<Interp>,
        closure_slot: &RefCell<MufValue>,
        init_state: &MufValue,
        takes_input: bool,
    ) -> Option<Rc<TapeShared>> {
        let mut attempt = self.attempt.borrow_mut();
        if attempt.is_none() {
            let slot = closure_slot.borrow();
            *attempt = Some(match &*slot {
                MufValue::Closure(c) => {
                    crate::transform::lower::lower_closure(interp, c, init_state, takes_input)
                        .map(|prog| Rc::new(TapeShared::new(prog)))
                }
                other => Err(format!("transition is not a closure: {}", other.kind())),
            });
        }
        match attempt.as_ref() {
            Some(Ok(shared)) => Some(shared.clone()),
            _ => None,
        }
    }
}

/// Splits a whole state value into flat slots following `shape`. Only
/// genuine `Tuple` nodes are accepted at interior positions so the flat
/// form joins back to the identical value (bit-for-bit) if the engine
/// ever has to fall back mid-run.
pub(crate) fn split_state(v: &MufValue, shape: &StateShape) -> Result<Vec<MufValue>, String> {
    fn go(v: &MufValue, shape: &StateShape, out: &mut Vec<MufValue>) -> Result<(), String> {
        match shape {
            StateShape::Leaf => {
                out.push(v.clone());
                Ok(())
            }
            StateShape::Node(children) => match v {
                MufValue::Tuple(xs) if xs.len() == children.len() => {
                    for (x, s) in xs.iter().zip(children) {
                        go(x, s, out)?;
                    }
                    Ok(())
                }
                other => Err(format!(
                    "state shape mismatch: expected a {}-tuple, found {}",
                    children.len(),
                    other.kind()
                )),
            },
        }
    }
    let mut out = Vec::with_capacity(shape.leaves());
    go(v, shape, &mut out)?;
    Ok(out)
}

/// Rebuilds the whole state value from flat slots (mid-run interpreter
/// fallback). Inverse of [`split_state`] by construction.
pub(crate) fn join_state(slots: &mut std::vec::IntoIter<MufValue>, shape: &StateShape) -> MufValue {
    match shape {
        StateShape::Leaf => slots.next().unwrap_or(MufValue::Nil),
        StateShape::Node(children) => {
            MufValue::Tuple(children.iter().map(|s| join_state(slots, s)).collect())
        }
    }
}

/// Outcome of a tape step: either the tick output, or an instruction to
/// fall back to the interpreter for this and all future ticks (the
/// installed closure no longer matches the lowered body).
pub(crate) enum TapeStep {
    Done(Value),
    FallBack,
}

/// One particle step on the tape. Mirrors `MufModel::step`'s interpreter
/// path: state slots move into their registers, the tape executes, the
/// output is folded to a core value, and the successor state moves back
/// out.
pub(crate) fn step_model(
    interp: &Rc<Interp>,
    cell: &TapeCell,
    shared: &Rc<TapeShared>,
    closure_slot: &RefCell<MufValue>,
    state: &mut ModelState,
    ctx: &mut dyn ProbCtx,
    input: &Value,
) -> Result<TapeStep, LangError> {
    let prog = &shared.prog;
    // Refresh captured-environment registers when the closure slot was
    // rewritten since the last sync (every tick for re-closing `infer`
    // sites; once for driver engines with a static closure).
    if cell.synced.get() != cell.epoch.get() {
        let slot = closure_slot.borrow();
        let MufValue::Closure(c) = &*slot else {
            cell.poison(format!("transition became a non-closure: {}", slot.kind()));
            return Ok(TapeStep::FallBack);
        };
        if Rc::as_ptr(&c.body) as usize != prog.body_ptr {
            cell.poison("transition closure changed shape mid-run".into());
            return Ok(TapeStep::FallBack);
        }
        let mut regs = shared.regs.borrow_mut();
        for (name, reg) in &prog.env_slots {
            let Some(v) = c.env.lookup(name) else {
                cell.poison(format!("captured variable `{name}` disappeared"));
                return Ok(TapeStep::FallBack);
            };
            regs[*reg as usize] = v.clone();
        }
        drop(regs);
        cell.synced.set(cell.epoch.get());
    }
    // First tape step: split the whole state into flat slots.
    if let ModelState::Whole(whole) = &*state {
        match split_state(whole, &prog.shape) {
            Ok(slots) => *state = ModelState::Flat(slots),
            Err(e) => {
                cell.poison(format!("state does not fit the tape shape: {e}"));
                return Ok(TapeStep::FallBack);
            }
        }
    }
    let ModelState::Flat(slots) = state else {
        return Err(LangError::new(Stage::Eval, "tape state must be flat"));
    };
    let mut regs = shared.regs.borrow_mut();
    if let Some(r) = prog.input {
        regs[r as usize] = MufValue::V(input.clone());
    }
    for (slot, &r) in slots.iter_mut().zip(&prog.state_in) {
        regs[r as usize] = std::mem::replace(slot, MufValue::Nil);
    }
    exec(interp, prog, &mut regs, ctx)?;
    // Fold the output before moving state out: an output register may
    // alias a state register.
    let out = fold_out(&prog.out, &regs)?;
    if prog.state_out_unique {
        for (slot, &r) in slots.iter_mut().zip(&prog.state_out) {
            *slot = std::mem::replace(&mut regs[r as usize], MufValue::Nil);
        }
    } else {
        for (slot, &r) in slots.iter_mut().zip(&prog.state_out) {
            *slot = regs[r as usize].clone();
        }
    }
    Ok(TapeStep::Done(out))
}

/// Folds an [`OutSpec`] to a core value, mirroring [`MufValue::as_core`]
/// (tuples become right-nested pairs).
fn fold_out(spec: &OutSpec, regs: &[MufValue]) -> Result<Value, LangError> {
    match spec {
        OutSpec::Reg(r) => regs[*r as usize].as_core(),
        OutSpec::Tuple(items) => {
            let parts: Vec<Value> = items
                .iter()
                .map(|s| fold_out(s, regs))
                .collect::<Result<_, _>>()?;
            Ok(parts
                .into_iter()
                .rev()
                .reduce(|acc, v| Value::pair(v, acc))
                .unwrap_or(Value::Unit))
        }
    }
}

/// Runs the instruction stream. Every opcode matches the corresponding
/// `Interp::eval` branch exactly — same evaluation order, same error
/// messages, same RNG draws — so posteriors agree bit-for-bit with the
/// interpreter.
fn exec(
    interp: &Rc<Interp>,
    prog: &TapeProgram,
    regs: &mut [MufValue],
    ctx: &mut dyn ProbCtx,
) -> Result<(), LangError> {
    let ops = &prog.ops;
    let mut pc = 0usize;
    while pc < ops.len() {
        match &ops[pc] {
            Op::Halt => break,
            Op::Const { dst, v } => regs[*dst as usize] = v.clone(),
            Op::Move { dst, src } => regs[*dst as usize] = regs[*src as usize].clone(),
            Op::UnOp { op, dst, a } => {
                let v = interp.op_on_refs(
                    *op,
                    &[&regs[*a as usize]],
                    &mut ProbSlot::Prob(&mut *ctx),
                )?;
                regs[*dst as usize] = v;
            }
            Op::BinOp { op, dst, a, b } => {
                let v = interp.op_on_refs(
                    *op,
                    &[&regs[*a as usize], &regs[*b as usize]],
                    &mut ProbSlot::Prob(&mut *ctx),
                )?;
                regs[*dst as usize] = v;
            }
            Op::TernOp { op, dst, a, b, c } => {
                let v = interp.op_on_refs(
                    *op,
                    &[&regs[*a as usize], &regs[*b as usize], &regs[*c as usize]],
                    &mut ProbSlot::Prob(&mut *ctx),
                )?;
                regs[*dst as usize] = v;
            }
            Op::MkTuple { dst, items } => {
                let v = MufValue::Tuple(items.iter().map(|&r| regs[r as usize].clone()).collect());
                regs[*dst as usize] = v;
            }
            Op::Proj {
                dst,
                src,
                idx,
                arity,
            } => {
                let v = project(&regs[*src as usize], *idx, *arity)?;
                regs[*dst as usize] = v;
            }
            Op::Select { dst, cond, t, f } => {
                let c = regs[*cond as usize].clone();
                let v = match interp.condition_value(c, &mut ProbSlot::Prob(&mut *ctx))? {
                    None => MufValue::Nil,
                    Some(true) => regs[*t as usize].clone(),
                    Some(false) => regs[*f as usize].clone(),
                };
                regs[*dst as usize] = v;
            }
            Op::Sample { dst, dist } => {
                let d = dist_of(&regs[*dist as usize])?;
                let v = ctx.sample(d)?;
                regs[*dst as usize] = MufValue::V(v);
            }
            Op::Observe { dist, obs } => {
                let d = dist_of(&regs[*dist as usize])?;
                let o = regs[*obs as usize].as_core()?;
                ctx.observe(d, &o)?;
            }
            Op::Factor { w } => {
                let v = regs[*w as usize].as_core()?;
                let v = ctx.force(&v)?;
                ctx.factor(v.as_float()?);
            }
            Op::Value { dst, src } => {
                let v = regs[*src as usize].as_core()?;
                let v = ctx.force(&v)?;
                regs[*dst as usize] = MufValue::V(v);
            }
            Op::Freshen { dst, src } => {
                regs[*dst as usize] = regs[*src as usize].deep_clone();
            }
            Op::Jmp { target } => {
                pc = *target as usize;
                continue;
            }
            Op::JmpIfNot { cond, target } => {
                let c = regs[*cond as usize].clone();
                match interp.condition_value(c, &mut ProbSlot::Prob(&mut *ctx))? {
                    None => {
                        return Err(LangError::new(
                            Stage::Eval,
                            "uninitialized condition; guard delays with `->`",
                        ));
                    }
                    Some(true) => {}
                    Some(false) => {
                        pc = *target as usize;
                        continue;
                    }
                }
            }
            Op::CallSummary { dst, f, arg } => {
                let a = regs[*arg as usize].clone();
                let v = interp.apply(f, a, &mut ProbSlot::Prob(&mut *ctx))?;
                regs[*dst as usize] = v;
            }
            Op::Eval { dst, f, arg } => {
                let fv = regs[*f as usize].clone();
                let a = regs[*arg as usize].clone();
                let v = interp.apply(&fv, a, &mut ProbSlot::Prob(&mut *ctx))?;
                regs[*dst as usize] = v;
            }
        }
        pc += 1;
    }
    Ok(())
}

/// Runtime tuple projection with the interpreter's pattern-binding
/// semantics (core pairs at arity 2, `nil` spreads, arity checking).
fn project(v: &MufValue, idx: u32, arity: u32) -> Result<MufValue, LangError> {
    match v {
        MufValue::Tuple(xs) => {
            if xs.len() != arity as usize {
                return Err(LangError::new(
                    Stage::Eval,
                    format!(
                        "tuple arity mismatch: pattern {} vs value {}",
                        arity,
                        xs.len()
                    ),
                ));
            }
            Ok(xs[idx as usize].clone())
        }
        MufValue::V(Value::Pair(a, b)) if arity == 2 => Ok(MufValue::V(if idx == 0 {
            (**a).clone()
        } else {
            (**b).clone()
        })),
        MufValue::Nil => Ok(MufValue::Nil),
        other => Err(LangError::new(
            Stage::Eval,
            format!("cannot destructure a {}", other.kind()),
        )),
    }
}

/// Resolves a register to a distribution, mirroring `Interp::eval_dist`.
fn dist_of(v: &MufValue) -> Result<&probzelus_core::value::DistExpr, LangError> {
    match v {
        MufValue::V(Value::Dist(d)) => Ok(d),
        MufValue::Nil => Err(LangError::new(
            Stage::Eval,
            "uninitialized distribution; guard delays with `->`",
        )),
        other => Err(LangError::new(
            Stage::Eval,
            format!("expected a distribution, found {}", other.kind()),
        )),
    }
}

impl TapeProgram {
    /// Pretty-prints the tape (the `pzc emit --tape` rendering and the
    /// golden-test surface). The format is stable: header, environment
    /// and state register conventions, constant pool, then one line per
    /// op as `NNNN mnemonic  dst <- operands`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "regs: {}  ops: {}  state: {} slot(s)",
            self.num_regs,
            self.ops.len(),
            self.state_in.len()
        );
        if let Some(r) = self.input {
            let _ = writeln!(s, "input: r{r}");
        }
        for (name, reg) in &self.env_slots {
            let _ = writeln!(s, "env: {name} -> r{reg}");
        }
        let ins: Vec<String> = self.state_in.iter().map(|r| format!("r{r}")).collect();
        let outs: Vec<String> = self.state_out.iter().map(|r| format!("r{r}")).collect();
        let _ = writeln!(s, "state_in: {}", ins.join(" "));
        let _ = writeln!(s, "state_out: {}", outs.join(" "));
        let _ = writeln!(s, "out: {}", render_out(&self.out));
        for op in &self.consts {
            if let Op::Const { dst, v } = op {
                let _ = writeln!(s, "const r{dst} <- {}", render_value(v));
            }
        }
        for (i, op) in self.ops.iter().enumerate() {
            let _ = writeln!(s, "{i:04} {}", render_op(op, &self.reg_names));
        }
        s
    }
}

fn render_out(spec: &OutSpec) -> String {
    match spec {
        OutSpec::Reg(r) => format!("r{r}"),
        OutSpec::Tuple(items) => {
            let parts: Vec<String> = items.iter().map(render_out).collect();
            format!("({})", parts.join(", "))
        }
    }
}

fn render_value(v: &MufValue) -> String {
    match v {
        MufValue::V(val) => format!("{val:?}"),
        MufValue::Nil => "nil".into(),
        MufValue::Tuple(xs) => format!("tuple[{}]", xs.len()),
        MufValue::Closure(_) => "closure".into(),
        MufValue::Engine(_) => "engine".into(),
        MufValue::Posterior(_) => "posterior".into(),
    }
}

fn render_op(op: &Op, names: &[String]) -> String {
    let named = |r: Reg| -> String {
        match names.get(r as usize) {
            Some(n) if !n.is_empty() => format!("r{r}({n})"),
            _ => format!("r{r}"),
        }
    };
    match op {
        Op::Const { dst, v } => format!("const       {} <- {}", named(*dst), render_value(v)),
        Op::Move { dst, src } => format!("move        {} <- {}", named(*dst), named(*src)),
        Op::UnOp { op, dst, a } => {
            format!("unop.{:<6} {} <- {}", mnemonic(*op), named(*dst), named(*a))
        }
        Op::BinOp { op, dst, a, b } => format!(
            "binop.{:<5} {} <- {}, {}",
            mnemonic(*op),
            named(*dst),
            named(*a),
            named(*b)
        ),
        Op::TernOp { op, dst, a, b, c } => format!(
            "ternop.{:<4} {} <- {}, {}, {}",
            mnemonic(*op),
            named(*dst),
            named(*a),
            named(*b),
            named(*c)
        ),
        Op::MkTuple { dst, items } => {
            let parts: Vec<String> = items.iter().map(|&r| named(r)).collect();
            format!("mk_tuple    {} <- ({})", named(*dst), parts.join(", "))
        }
        Op::Proj {
            dst,
            src,
            idx,
            arity,
        } => format!(
            "proj        {} <- {}[{idx}/{arity}]",
            named(*dst),
            named(*src)
        ),
        Op::Select { dst, cond, t, f } => format!(
            "select      {} <- {} ? {} : {}",
            named(*dst),
            named(*cond),
            named(*t),
            named(*f)
        ),
        Op::Sample { dst, dist } => format!("sample      {} <- {}", named(*dst), named(*dist)),
        Op::Observe { dist, obs } => format!("observe     {}, {}", named(*dist), named(*obs)),
        Op::Factor { w } => format!("factor      {}", named(*w)),
        Op::Value { dst, src } => format!("value       {} <- {}", named(*dst), named(*src)),
        Op::Freshen { dst, src } => format!("freshen     {} <- {}", named(*dst), named(*src)),
        Op::Jmp { target } => format!("jmp         @{target:04}"),
        Op::JmpIfNot { cond, target } => {
            format!("jmp_if_not  {} @{target:04}", named(*cond))
        }
        Op::CallSummary { dst, arg, .. } => {
            format!("call_summary {} <- closure({})", named(*dst), named(*arg))
        }
        Op::Eval { dst, f, arg } => {
            format!(
                "eval        {} <- {}({})",
                named(*dst),
                named(*f),
                named(*arg)
            )
        }
        Op::Halt => "halt".into(),
    }
}

fn mnemonic(op: OpName) -> String {
    format!("{op:?}").to_lowercase()
}
