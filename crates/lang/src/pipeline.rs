//! The end-to-end compilation pipeline and its driver-facing API.
//!
//! ```text
//! source ──parse──► AST ──automata──► AST ──kinds──► D/P ──types──► elaborated AST
//!        ──initcheck──► ✓ ──desugar──► kernel ──schedule──► scheduled
//!        ──compile──► µF ──Interp──► Instance / MufEngine
//! ```

use crate::ast::Program;
use crate::automata::expand_program;
use crate::compile::{compile_program, init_name, step_name};
use crate::error::{LangError, Stage};
use crate::eval::{Instance, Interp, MufEngine, Options, ProbSlot};
use crate::initcheck;
use crate::kinds::{self, Kind};
use crate::muf::{MufProgram, MufValue};
use crate::parser::parse_program;
use crate::schedule::schedule_program;
use crate::transform::desugar_program;
use crate::types::{self, NodeSig};
use std::collections::HashMap;

/// A fully checked and compiled program.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The scheduled kernel program (after desugaring).
    pub kernel: Program,
    /// The compiled µF definitions.
    pub muf: MufProgram,
    /// Each node's kind (deterministic / probabilistic).
    pub kinds: HashMap<String, Kind>,
    /// Each node's data-type signature.
    pub sigs: HashMap<String, NodeSig>,
}

/// Runs the whole pipeline on source text.
///
/// # Errors
///
/// The first error of any stage, with stage and (for syntax errors)
/// position information.
///
/// # Examples
///
/// ```
/// let compiled = probzelus_lang::pipeline::compile_source(r#"
///     let node hmm y = x where
///       rec x = sample (gaussian ((0. -> pre x), (100. -> 1.)))
///       and () = observe (gaussian (x, 1.), y)
///     let node main y = infer 100 hmm y
/// "#)?;
/// assert_eq!(compiled.kinds["hmm"], probzelus_lang::Kind::P);
/// assert_eq!(compiled.kinds["main"], probzelus_lang::Kind::D);
/// # Ok::<(), probzelus_lang::LangError>(())
/// ```
pub fn compile_source(src: &str) -> Result<Compiled, LangError> {
    let program = parse_program(src)?;
    let mut program = expand_program(&program)?;
    let kinds = kinds::check_program(&program)?;
    let sigs = types::check_program(&mut program)?;
    initcheck::check_program(&program)?;
    let kernel = desugar_program(&program);
    let kernel = schedule_program(&kernel)?;
    let muf = compile_program(&kernel)?;
    Ok(Compiled {
        kernel,
        muf,
        kinds,
        sigs,
    })
}

impl Compiled {
    /// Instantiates a **deterministic** node as a driver-facing stream
    /// function (its embedded `infer` sites allocate engines per
    /// `options`).
    ///
    /// # Errors
    ///
    /// Unknown or probabilistic nodes (use [`Compiled::infer_node`] for
    /// the latter), or initialization failures.
    pub fn instantiate(&self, node: &str, options: Options) -> Result<Instance, LangError> {
        self.check_deterministic(node)?;
        let interp = Interp::new(&self.muf, options)?;
        Instance::new(interp, node)
    }

    /// Like [`Compiled::instantiate`], but every engine the instance's
    /// embedded `infer` sites allocate exports telemetry through `obs`
    /// (scoped per engine to its inference-method label).
    ///
    /// Keep a clone of `obs` and call [`Obs::flush`](probzelus_core::obs::Obs::flush)
    /// when the run ends: the interpreter retains its own handle, so a
    /// buffered sink (e.g. `WriterSink`) cannot rely on drop order to
    /// flush.
    ///
    /// # Errors
    ///
    /// As for [`Compiled::instantiate`].
    #[cfg(feature = "obs")]
    pub fn instantiate_with_obs(
        &self,
        node: &str,
        options: Options,
        obs: probzelus_core::obs::Obs,
    ) -> Result<Instance, LangError> {
        self.check_deterministic(node)?;
        let interp = Interp::new_with_obs(&self.muf, options, obs)?;
        Instance::new(interp, node)
    }

    fn check_deterministic(&self, node: &str) -> Result<(), LangError> {
        match self.kinds.get(node) {
            None => Err(LangError::new(
                Stage::Eval,
                format!("unknown node `{node}`"),
            )),
            Some(Kind::P) => Err(LangError::new(
                Stage::Eval,
                format!(
                    "node `{node}` is probabilistic; run it with `infer_node` or wrap it in `infer`"
                ),
            )),
            Some(Kind::D) => Ok(()),
        }
    }

    /// Runs a **probabilistic** node directly under an inference engine
    /// (equivalent to `infer particles node input` at the driver level,
    /// but feeding the input stream from Rust).
    ///
    /// # Errors
    ///
    /// Unknown nodes or initialization failures.
    pub fn infer_node(
        &self,
        node: &str,
        particles: usize,
        options: Options,
    ) -> Result<MufEngine, LangError> {
        if !self.kinds.contains_key(node) {
            return Err(LangError::new(
                Stage::Eval,
                format!("unknown node `{node}`"),
            ));
        }
        let interp = Interp::new(&self.muf, options)?;
        let step = interp.global(&step_name(node)).ok_or_else(|| {
            LangError::new(Stage::Eval, format!("missing compiled step for `{node}`"))
        })?;
        let init_thunk = interp.global(&init_name(node)).ok_or_else(|| {
            LangError::new(Stage::Eval, format!("missing compiled init for `{node}`"))
        })?;
        let init_state = interp.apply(&init_thunk, MufValue::unit(), &mut ProbSlot::Det)?;
        Ok(MufEngine::new(
            interp,
            options.method,
            particles,
            init_state,
            step,
            true,
            options.seed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probzelus_core::infer::Method;
    use probzelus_core::Value;

    const HMM: &str = r#"
        let node hmm y = x where
          rec x = sample (gaussian ((0. -> pre x), (100. -> 1.)))
          and () = observe (gaussian (x, 1.), y)
        let node main y = infer 1 hmm y
    "#;

    #[test]
    fn pipeline_accepts_the_paper_programs() {
        let c = compile_source(HMM).unwrap();
        assert_eq!(c.kinds["hmm"], Kind::P);
        assert_eq!(c.kinds["main"], Kind::D);
    }

    #[test]
    fn instantiate_rejects_probabilistic_nodes() {
        let c = compile_source(HMM).unwrap();
        let err = c
            .instantiate(
                "hmm",
                Options {
                    method: Method::StreamingDs,
                    seed: 0,
                },
            )
            .unwrap_err();
        assert!(err.message.contains("probabilistic"));
    }

    #[test]
    fn infer_node_runs_exact_kalman() {
        let c = compile_source(HMM).unwrap();
        let mut eng = c
            .infer_node(
                "hmm",
                1,
                Options {
                    method: Method::StreamingDs,
                    seed: 3,
                },
            )
            .unwrap();
        let post = eng.step(&Value::Float(5.0)).unwrap();
        assert!((post.mean_float() - 5.0 * 100.0 / 101.0).abs() < 1e-9);
    }

    #[test]
    fn errors_carry_their_stage() {
        assert_eq!(
            compile_source("let node f = 3").unwrap_err().stage,
            Stage::Parse
        );
        assert_eq!(
            compile_source("let node f x = sample(sample(x))")
                .unwrap_err()
                .stage,
            Stage::Kind
        );
        assert_eq!(
            compile_source("let node f x = x + true").unwrap_err().stage,
            Stage::Type
        );
        assert_eq!(
            compile_source("let node f x = pre x").unwrap_err().stage,
            Stage::Init
        );
        assert_eq!(
            compile_source("let node f x = y where rec y = y + x")
                .unwrap_err()
                .stage,
            Stage::Schedule
        );
    }
}
