//! The end-to-end compilation pipeline and its driver-facing API.
//!
//! ```text
//! source ──parse──► AST ──automata──► AST ──kinds──► D/P ──types──► elaborated AST
//!        ──initcheck──► ✓ ──desugar──► kernel ──schedule──► scheduled
//!        ──compile──► µF ──Interp──► Instance / MufEngine
//! ```

use crate::analysis::bounded::{self, BoundedReport, Verdict};
use crate::analysis::effects::{self, EffectReport};
use crate::analysis::lints;
use crate::ast::Program;
use crate::automata::expand_program;
use crate::compile::{compile_program, compile_program_with, init_name, step_name, wrap_name};
use crate::diag::{Code, Diagnostic};
use crate::error::{LangError, Stage};
use crate::eval::{Instance, Interp, MufEngine, MufPrelude, Options, ProbSlot};
use crate::initcheck;
use crate::kinds::{self, Kind};
use crate::muf::{MufProgram, MufValue};
use crate::parser::parse_program;
use crate::schedule::schedule_program;
use crate::transform::desugar_program;
use crate::transform::opt::{optimize_program, HoistPlan, OptConfig, OptReport};
use crate::types::{self, NodeSig};
use probzelus_core::infer::Method;
use std::collections::HashMap;

/// A fully checked and compiled program.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The scheduled kernel program (after desugaring).
    pub kernel: Program,
    /// The compiled µF definitions.
    pub muf: MufProgram,
    /// Each node's kind (deterministic / probabilistic).
    pub kinds: HashMap<String, Kind>,
    /// Each node's data-type signature.
    pub sigs: HashMap<String, NodeSig>,
    /// Each node's delayed-sampling boundedness verdict.
    pub bounded: HashMap<String, Verdict>,
    /// The effect & particle-invariance analysis over the kernel.
    pub effects: EffectReport,
    /// Hoist plans applied by the optimizer (empty when compiled without
    /// [`compile_source_opt`]). [`Compiled::infer_node`] consults these to
    /// attach the per-tick prelude to driver-facing engines.
    pub plans: HashMap<String, HoistPlan>,
}

/// Runs the whole pipeline on source text.
///
/// # Errors
///
/// The first error of any stage, with stage and (for syntax errors)
/// position information.
///
/// # Examples
///
/// ```
/// let compiled = probzelus_lang::pipeline::compile_source(r#"
///     let node hmm y = x where
///       rec x = sample (gaussian ((0. -> pre x), (100. -> 1.)))
///       and () = observe (gaussian (x, 1.), y)
///     let node main y = infer 100 hmm y
/// "#)?;
/// assert_eq!(compiled.kinds["hmm"], probzelus_lang::Kind::P);
/// assert_eq!(compiled.kinds["main"], probzelus_lang::Kind::D);
/// # Ok::<(), probzelus_lang::LangError>(())
/// ```
pub fn compile_source(src: &str) -> Result<Compiled, LangError> {
    build(src).map(|(compiled, _, _)| compiled)
}

/// The pipeline plus the full analysis report and the expanded surface
/// program (which the lints need: its equations are the ones the user
/// wrote).
fn build(src: &str) -> Result<(Compiled, BoundedReport, Program), LangError> {
    let program = parse_program(src)?;
    let mut program = expand_program(&program)?;
    let kinds = kinds::check_program(&program)?;
    let sigs = types::check_program(&mut program)?;
    initcheck::check_program(&program)?;
    let kernel = desugar_program(&program);
    let kernel = schedule_program(&kernel)?;
    let muf = compile_program(&kernel)?;
    let report = bounded::analyze_program(&kernel, &kinds);
    let effects = effects::analyze_program(&kernel);
    Ok((
        Compiled {
            kernel,
            muf,
            kinds,
            sigs,
            bounded: report.verdicts.clone(),
            effects,
            plans: HashMap::new(),
        },
        report,
        program,
    ))
}

/// The result of [`optimize_source`]: the optimized compilation next to
/// its unoptimized baseline, plus the optimizer's diagnostics.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The optimized program (hoist plans applied, µF compiled against
    /// them). Run nodes through this one.
    pub compiled: Compiled,
    /// The unoptimized baseline (for before/after display and
    /// differential checks).
    pub baseline: Compiled,
    /// What each pass did — counters and hoist plans.
    pub report: OptReport,
}

/// Runs the whole pipeline and then the optimizing µF pass pipeline
/// (constant propagation/folding, dead-stream elimination, common
/// subexpression factoring, and particle-invariant hoisting per `cfg`).
///
/// The boundedness verdicts are computed on the *unoptimized* kernel —
/// the hoist transform splits nodes, which must not change what the
/// analysis reports to users.
///
/// # Errors
///
/// As for [`compile_source`].
pub fn optimize_source(src: &str, cfg: &OptConfig) -> Result<Optimized, LangError> {
    let baseline = compile_source(src)?;
    let (kernel, report) = optimize_program(&baseline.kernel, cfg)?;
    let muf = compile_program_with(&kernel, &report.plans)?;
    let effects = effects::analyze_program(&kernel);
    let compiled = Compiled {
        kernel,
        muf,
        kinds: baseline.kinds.clone(),
        sigs: baseline.sigs.clone(),
        bounded: baseline.bounded.clone(),
        effects,
        plans: report.plans.clone(),
    };
    Ok(Optimized {
        compiled,
        baseline,
        report,
    })
}

/// [`optimize_source`] with every pass enabled, returning just the
/// optimized compilation.
///
/// # Errors
///
/// As for [`compile_source`].
pub fn compile_source_opt(src: &str) -> Result<Compiled, LangError> {
    optimize_source(src, &OptConfig::default()).map(|o| o.compiled)
}

/// The result of [`check_source`]: diagnostics plus, when every pipeline
/// stage passed, the compiled program.
#[derive(Debug, Clone)]
pub struct Checked {
    /// Present when compilation succeeded (warnings and lints do not
    /// prevent compilation).
    pub compiled: Option<Compiled>,
    /// All diagnostics: the first hard error, or any warnings/lints on a
    /// successful compile, sorted by source position.
    pub diagnostics: Vec<Diagnostic>,
}

impl Checked {
    /// Whether any diagnostic is a hard error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == crate::diag::Severity::Error)
    }
}

/// Checks source without instantiating anything: runs the whole pipeline,
/// the boundedness analysis, and (when `lint` is set) the style lints.
/// Never returns `Err`: failures become error diagnostics.
pub fn check_source(src: &str, lint: bool) -> Checked {
    match build(src) {
        Err(e) => Checked {
            compiled: None,
            diagnostics: vec![Diagnostic::from_error(&e)],
        },
        Ok((compiled, report, expanded)) => {
            let mut diags = Vec::new();
            for node in &expanded.nodes {
                if compiled.kinds.get(&node.name) != Some(&Kind::P) {
                    continue;
                }
                if let Some(Verdict::Unbounded { witness }) = compiled.bounded.get(&node.name) {
                    diags.push(
                        Diagnostic::warning(
                            Code::UNBOUNDED_CHAIN,
                            format!(
                                "delayed-sampling chain of node `{}` can grow without bound \
                                 (cycle: {})",
                                node.name,
                                witness.join(" -> ")
                            ),
                        )
                        .with_pos(node.body.span())
                        .with_note(
                            "every `pre`-carried random variable must be consumed by \
                             `observe` or `value` on every path",
                        ),
                    );
                }
            }
            if lint {
                diags.extend(lints::lint_program(
                    src,
                    &expanded,
                    &compiled.kinds,
                    &report,
                ));
            }
            let diags = lints::filter_suppressed(src, diags);
            Checked {
                compiled: Some(compiled),
                diagnostics: diags,
            }
        }
    }
}

impl Compiled {
    /// Instantiates a **deterministic** node as a driver-facing stream
    /// function (its embedded `infer` sites allocate engines per
    /// `options`).
    ///
    /// # Errors
    ///
    /// Unknown or probabilistic nodes (use [`Compiled::infer_node`] for
    /// the latter), or initialization failures.
    pub fn instantiate(&self, node: &str, options: Options) -> Result<Instance, LangError> {
        self.check_deterministic(node)?;
        let interp = Interp::new(&self.muf, options)?;
        Instance::new(interp, node)
    }

    /// Like [`Compiled::instantiate`], but every engine the instance's
    /// embedded `infer` sites allocate exports telemetry through `obs`
    /// (scoped per engine to its inference-method label).
    ///
    /// Keep a clone of `obs` and call [`Obs::flush`](probzelus_core::obs::Obs::flush)
    /// when the run ends: the interpreter retains its own handle, so a
    /// buffered sink (e.g. `WriterSink`) cannot rely on drop order to
    /// flush.
    ///
    /// # Errors
    ///
    /// As for [`Compiled::instantiate`].
    #[cfg(feature = "obs")]
    pub fn instantiate_with_obs(
        &self,
        node: &str,
        options: Options,
        obs: probzelus_core::obs::Obs,
    ) -> Result<Instance, LangError> {
        self.check_deterministic(node)?;
        self.emit_advisories(node, options.method, &obs);
        let interp = Interp::new_with_obs(&self.muf, options, obs)?;
        Instance::new(interp, node)
    }

    /// Emits a `check.advisory` obs event for every embedded `infer` site
    /// whose method choice contradicts the boundedness verdict.
    #[cfg(feature = "obs")]
    fn emit_advisories(&self, node: &str, method: Method, obs: &probzelus_core::obs::Obs) {
        use probzelus_core::obs::{events, FieldValue};
        let Some(decl) = self.kernel.node(node) else {
            return;
        };
        let mut inferred = Vec::new();
        crate::analysis::walk(&decl.body, &mut |e| {
            if let crate::ast::Expr::Infer { node: f, .. } = e {
                inferred.push(f.clone());
            }
        });
        inferred.sort();
        inferred.dedup();
        for f in inferred {
            if let Some(msg) = self.method_advisory(&f, method) {
                obs.event(
                    0,
                    events::CHECK_ADVISORY,
                    &[
                        ("node", FieldValue::Text(&f)),
                        ("method", FieldValue::Text(method.label())),
                        ("message", FieldValue::Text(&msg)),
                    ],
                );
            }
        }
    }

    /// A warning when the selected inference method contradicts the
    /// boundedness verdict ([`Code::METHOD_MISMATCH`]): classic DS on a
    /// node proved bounded (streaming DS gives the same posterior in
    /// constant memory), or a bounded-memory method on a node proved
    /// unbounded (the graph will still grow).
    pub fn method_advisory(&self, node: &str, method: Method) -> Option<String> {
        match (method, self.bounded.get(node)?) {
            (Method::ClassicDs, Verdict::Bounded(k)) if *k > 0 => Some(format!(
                "node `{node}` has a provably bounded delayed-sampling graph (Bounded({k})); \
                 streaming delayed sampling (`--method sds`) gives the same posterior in \
                 constant memory"
            )),
            (Method::StreamingDs | Method::BoundedDs, Verdict::Unbounded { witness }) => {
                Some(format!(
                    "node `{node}` has an unbounded delayed-sampling chain (cycle: {}); \
                     bounded-memory delayed sampling will grow its graph anyway",
                    witness.join(" -> ")
                ))
            }
            _ => None,
        }
    }

    fn check_deterministic(&self, node: &str) -> Result<(), LangError> {
        match self.kinds.get(node) {
            None => Err(LangError::new(
                Stage::Eval,
                format!("unknown node `{node}`"),
            )),
            Some(Kind::P) => Err(LangError::new(
                Stage::Eval,
                format!(
                    "node `{node}` is probabilistic; run it with `infer_node` or wrap it in `infer`"
                ),
            )),
            Some(Kind::D) => Ok(()),
        }
    }

    /// Runs a **probabilistic** node directly under an inference engine
    /// (equivalent to `infer particles node input` at the driver level,
    /// but feeding the input stream from Rust).
    ///
    /// # Errors
    ///
    /// Unknown nodes or initialization failures.
    pub fn infer_node(
        &self,
        node: &str,
        particles: usize,
        options: Options,
    ) -> Result<MufEngine, LangError> {
        if !self.kinds.contains_key(node) {
            return Err(LangError::new(
                Stage::Eval,
                format!("unknown node `{node}`"),
            ));
        }
        if let Some(msg) = self.method_advisory(node, options.method) {
            eprintln!("warning[{}]: {msg}", Code::METHOD_MISMATCH);
        }
        let interp = Interp::new(&self.muf, options)?;
        let global = |name: &str| {
            interp
                .global(name)
                .ok_or_else(|| LangError::new(Stage::Eval, format!("missing compiled `{name}`")))
        };
        // A planned node runs in split form: particles step the residual
        // `{node}#main`, and the hoisted `{node}#prelude` advances once
        // per tick on the coordinator, fed the driver input directly.
        if let Some(plan) = self.plans.get(node) {
            let main_step = global(&step_name(&plan.main_node))?;
            let main_init = global(&init_name(&plan.main_node))?;
            let pre_step = global(&step_name(&plan.prelude_node))?;
            let pre_init = global(&init_name(&plan.prelude_node))?;
            let wrap = global(&wrap_name(node))?;
            let pre_state = interp.apply(&pre_init, MufValue::unit(), &mut ProbSlot::Det)?;
            let init_state = interp.apply(&main_init, MufValue::unit(), &mut ProbSlot::Det)?;
            let prelude = MufPrelude::new(pre_step, wrap, pre_state, true);
            return Ok(MufEngine::new(
                interp,
                options.method,
                particles,
                init_state,
                main_step,
                true,
                options.seed,
            )
            .with_prelude(prelude));
        }
        let step = global(&step_name(node))?;
        let init_thunk = global(&init_name(node))?;
        let init_state = interp.apply(&init_thunk, MufValue::unit(), &mut ProbSlot::Det)?;
        Ok(MufEngine::new(
            interp,
            options.method,
            particles,
            init_state,
            step,
            true,
            options.seed,
        ))
    }

    /// Lowers a node's per-particle transition to the flat instruction
    /// tape, without running anything — the static view behind
    /// `pzc emit --tape`. For a hoist-planned node this is the residual
    /// `{node}#main` transition as the wrap function closes over it (the
    /// prelude broadcast slot shows up as an env slot, refreshed each
    /// tick at runtime).
    ///
    /// The inner `Err` is the lowering-refusal reason (the engine would
    /// keep interpreting); nodes whose step embeds `infer` — drivers —
    /// refuse by design.
    ///
    /// # Errors
    ///
    /// Unknown nodes or initialization failures.
    pub fn lower_node(
        &self,
        node: &str,
        options: Options,
    ) -> Result<Result<crate::tape::TapeProgram, String>, LangError> {
        if !self.kinds.contains_key(node) {
            return Err(LangError::new(
                Stage::Eval,
                format!("unknown node `{node}`"),
            ));
        }
        let interp = Interp::new(&self.muf, options)?;
        let global = |name: &str| {
            interp
                .global(name)
                .ok_or_else(|| LangError::new(Stage::Eval, format!("missing compiled `{name}`")))
        };
        let (transition, init_state) = if let Some(plan) = self.plans.get(node) {
            let main_init = global(&init_name(&plan.main_node))?;
            let wrap = global(&wrap_name(node))?;
            let init_state = interp.apply(&main_init, MufValue::unit(), &mut ProbSlot::Det)?;
            // The broadcast value is a runtime input (an env slot of the
            // closed transition); `nil` stands in for it here.
            let transition = interp.apply(&wrap, MufValue::Nil, &mut ProbSlot::Det)?;
            (transition, init_state)
        } else {
            let init_thunk = global(&init_name(node))?;
            let init_state = interp.apply(&init_thunk, MufValue::unit(), &mut ProbSlot::Det)?;
            (global(&step_name(node))?, init_state)
        };
        let MufValue::Closure(closure) = &transition else {
            return Ok(Err(format!(
                "transition is not a closure: {}",
                transition.kind()
            )));
        };
        Ok(crate::transform::lower::lower_closure(
            &interp,
            closure,
            &init_state,
            true,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probzelus_core::infer::Method;
    use probzelus_core::Value;

    const HMM: &str = r#"
        let node hmm y = x where
          rec x = sample (gaussian ((0. -> pre x), (100. -> 1.)))
          and () = observe (gaussian (x, 1.), y)
        let node main y = infer 1 hmm y
    "#;

    #[test]
    fn pipeline_accepts_the_paper_programs() {
        let c = compile_source(HMM).unwrap();
        assert_eq!(c.kinds["hmm"], Kind::P);
        assert_eq!(c.kinds["main"], Kind::D);
    }

    #[test]
    fn instantiate_rejects_probabilistic_nodes() {
        let c = compile_source(HMM).unwrap();
        let err = c
            .instantiate(
                "hmm",
                Options {
                    method: Method::StreamingDs,
                    seed: 0,
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(err.message.contains("probabilistic"));
    }

    #[test]
    fn infer_node_runs_exact_kalman() {
        let c = compile_source(HMM).unwrap();
        let mut eng = c
            .infer_node(
                "hmm",
                1,
                Options {
                    method: Method::StreamingDs,
                    seed: 3,
                    ..Default::default()
                },
            )
            .unwrap();
        let post = eng.step(&Value::Float(5.0)).unwrap();
        assert!((post.mean_float() - 5.0 * 100.0 / 101.0).abs() < 1e-9);
    }

    #[test]
    fn check_source_reports_errors_as_diagnostics() {
        let checked = check_source("let node f x = x + true", false);
        assert!(checked.compiled.is_none());
        assert!(checked.has_errors());
        assert_eq!(checked.diagnostics[0].code, Code::TYPE_MISMATCH);
    }

    #[test]
    fn check_source_warns_on_unbounded_chains() {
        let src = r#"
            let node drift () = x where
              rec x = sample (gaussian ((0. -> pre x), 1.))
        "#;
        let checked = check_source(src, false);
        assert!(!checked.has_errors(), "{:?}", checked.diagnostics);
        assert_eq!(checked.diagnostics.len(), 1);
        assert_eq!(checked.diagnostics[0].code, Code::UNBOUNDED_CHAIN);
        let compiled = checked.compiled.unwrap();
        assert!(matches!(
            compiled.bounded["drift"],
            Verdict::Unbounded { .. }
        ));
    }

    #[test]
    fn method_advisory_flags_contradictory_choices() {
        let c = compile_source(HMM).unwrap();
        let msg = c.method_advisory("hmm", Method::ClassicDs).unwrap();
        assert!(msg.contains("Bounded(1)"), "{msg}");
        assert!(msg.contains("--method sds"), "{msg}");
        assert!(c.method_advisory("hmm", Method::StreamingDs).is_none());
        assert!(c.method_advisory("hmm", Method::ParticleFilter).is_none());

        let c = compile_source(
            "let node drift () = x where rec x = sample (gaussian ((0. -> pre x), 1.))",
        )
        .unwrap();
        let msg = c.method_advisory("drift", Method::StreamingDs).unwrap();
        assert!(msg.contains("unbounded"), "{msg}");
        assert!(c.method_advisory("drift", Method::ClassicDs).is_none());
    }

    #[test]
    fn errors_carry_their_stage() {
        assert_eq!(
            compile_source("let node f = 3").unwrap_err().stage,
            Stage::Parse
        );
        assert_eq!(
            compile_source("let node f x = sample(sample(x))")
                .unwrap_err()
                .stage,
            Stage::Kind
        );
        assert_eq!(
            compile_source("let node f x = x + true").unwrap_err().stage,
            Stage::Type
        );
        assert_eq!(
            compile_source("let node f x = pre x").unwrap_err().stage,
            Stage::Init
        );
        assert_eq!(
            compile_source("let node f x = y where rec y = y + x")
                .unwrap_err()
                .stage,
            Stage::Schedule
        );
    }
}
