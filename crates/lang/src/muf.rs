//! µF: the first-order functional target language (Fig. 10), extended with
//! the engine-backed `infer` forms the compilation of §4 produces.
//!
//! µF values ([`MufValue`]) are a superset of the runtime [`Value`]s:
//! tuples (for the externalized transition states), closures, inference
//! engines (the σ state of a compiled `infer`), posteriors (the `T dist`
//! values the driver consumes), and the `nil` poison value of uninitialized
//! delays.

use crate::ast::{Const, OpName};
use crate::error::{LangError, Stage};
use probzelus_core::{Posterior, Value};
use std::cell::RefCell;
use std::rc::Rc;

/// µF expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum MufExpr {
    /// Constant.
    Const(Const),
    /// Variable.
    Var(String),
    /// Tuple (used both for data pairs and transition-state vectors).
    Tuple(Vec<MufExpr>),
    /// External operator.
    Op(OpName, Vec<MufExpr>),
    /// Lazy conditional (only the selected branch is evaluated); errors on
    /// an uninitialized condition — used for `present`.
    If(Box<MufExpr>, Box<MufExpr>, Box<MufExpr>),
    /// Strict value selection; propagates `nil` conditions as `nil` — used
    /// for the kernel's strict `if` after both branches were evaluated.
    Select(Box<MufExpr>, Box<MufExpr>, Box<MufExpr>),
    /// Application `e1 (e2)`.
    App(Box<MufExpr>, Box<MufExpr>),
    /// `let p = e1 in e2`.
    Let(MufPat, Box<MufExpr>, Box<MufExpr>),
    /// `fun p -> e`. The body is reference-counted so closure creation in
    /// the evaluator shares it instead of deep-cloning the expression tree
    /// (the old per-application clone dominated small-kernel profiles), and
    /// so the tape backend can use pointer identity to detect a transition
    /// closure changing shape between ticks.
    Fun(MufPat, Rc<MufExpr>),
    /// `sample(e)`.
    Sample(Box<MufExpr>),
    /// `observe(e1, e2)`.
    Observe(Box<MufExpr>, Box<MufExpr>),
    /// `factor(e)`.
    Factor(Box<MufExpr>),
    /// `value(e)` — force realization (§5.3).
    ValueOp(Box<MufExpr>),
    /// One `infer` step: `body` evaluates (under the current environment)
    /// to the transition closure, `state` to the engine; yields
    /// `(posterior, engine')` — the µF `infer(C(e), sigma)` of Fig. 20.
    Infer {
        /// Particle count (display only; the engine was sized at init).
        particles: usize,
        /// Transition-function expression.
        body: Box<MufExpr>,
        /// Engine-state expression.
        state: Box<MufExpr>,
        /// For optimized sites: the particle-invariant prelude transition,
        /// evaluated once per tick under the driver environment and fed to
        /// every particle. `body` is then the wrap function mapping the
        /// prelude output to the per-particle transition closure.
        prelude: Option<Box<MufExpr>>,
    },
    /// Deep-copies the value of the inner expression. Used by the
    /// compilation of `reset`: the pristine initial state `s0` must stay
    /// pristine, but inference engines mutate in place, so restarting from
    /// `s0` hands out an independent copy.
    Freshen(Box<MufExpr>),
    /// Allocates a fresh engine whose particles start from `init` — the
    /// `A(infer ...)` initial state.
    EngineInit {
        /// Number of particles.
        particles: usize,
        /// Initial per-particle state expression.
        init: Box<MufExpr>,
        /// Transition-function expression (evaluated once at allocation so
        /// the engine can also be driven directly).
        body: Box<MufExpr>,
        /// For optimized sites: evaluates to
        /// `(prelude_init_state, prelude_transition)` — the engine-side
        /// state of the hoisted per-tick prelude. `body` is the wrap
        /// function in that case.
        prelude: Option<Box<MufExpr>>,
    },
}

/// µF patterns.
#[derive(Debug, Clone, PartialEq)]
pub enum MufPat {
    /// Variable binder.
    Var(String),
    /// Wildcard.
    Wildcard,
    /// Unit.
    Unit,
    /// Tuple of sub-patterns.
    Tuple(Vec<MufPat>),
}

impl MufPat {
    /// A fresh two-element tuple pattern (the common `(v, s)` shape).
    pub fn pair(a: MufPat, b: MufPat) -> MufPat {
        MufPat::Tuple(vec![a, b])
    }

    /// Variable pattern helper.
    pub fn var(name: impl Into<String>) -> MufPat {
        MufPat::Var(name.into())
    }
}

/// A top-level µF definition (`let f = e`).
#[derive(Debug, Clone, PartialEq)]
pub struct MufDef {
    /// Global name (`f_step` / `f_init`).
    pub name: String,
    /// Defining expression.
    pub expr: MufExpr,
}

/// A compiled µF program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MufProgram {
    /// Definitions in dependency order.
    pub defs: Vec<MufDef>,
}

/// Runtime values of the µF interpreter.
#[derive(Debug, Clone)]
pub enum MufValue {
    /// A core data value (possibly symbolic under delayed sampling).
    V(Value),
    /// The uninitialized poison value of an unguarded delay.
    Nil,
    /// Tuple (data or transition state).
    Tuple(Vec<MufValue>),
    /// A closure.
    Closure(Rc<Closure>),
    /// An inference-engine state (the σ of a compiled `infer`).
    Engine(EngineRef),
    /// A posterior distribution (the value of `infer` at each step).
    Posterior(Rc<Posterior>),
}

/// A µF closure.
#[derive(Debug)]
pub struct Closure {
    /// Parameter pattern.
    pub pat: MufPat,
    /// Body, shared with the `MufExpr::Fun` it was created from.
    pub body: Rc<MufExpr>,
    /// Captured environment.
    pub env: Env,
}

/// Shared reference to an engine over µF models. The concrete engine type
/// lives in [`crate::eval`]; it is type-erased here to keep the value type
/// independent of the interpreter internals.
#[derive(Debug, Clone)]
pub struct EngineRef(pub Rc<RefCell<crate::eval::MufEngine>>);

impl MufValue {
    /// Unit value.
    pub fn unit() -> MufValue {
        MufValue::V(Value::Unit)
    }

    /// A short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            MufValue::V(_) => "value",
            MufValue::Nil => "nil",
            MufValue::Tuple(_) => "tuple",
            MufValue::Closure(_) => "closure",
            MufValue::Engine(_) => "engine",
            MufValue::Posterior(_) => "distribution",
        }
    }

    /// Whether this is the nil poison value.
    pub fn is_nil(&self) -> bool {
        matches!(self, MufValue::Nil)
    }

    /// Converts into a core data [`Value`] (model outputs, op arguments).
    ///
    /// # Errors
    ///
    /// Fails on nil (uninitialized), closures, engines, and posteriors.
    pub fn as_core(&self) -> Result<Value, LangError> {
        match self {
            MufValue::V(v) => Ok(v.clone()),
            MufValue::Tuple(xs) => {
                let parts: Vec<Value> = xs.iter().map(|x| x.as_core()).collect::<Result<_, _>>()?;
                Ok(parts
                    .into_iter()
                    .rev()
                    .reduce(|acc, v| Value::pair(v, acc))
                    .unwrap_or(Value::Unit))
            }
            MufValue::Nil => Err(LangError::new(
                Stage::Eval,
                "uninitialized value (`nil`) observed; guard delays with `->`",
            )),
            other => Err(LangError::new(
                Stage::Eval,
                format!("expected a data value, found a {}", other.kind()),
            )),
        }
    }

    /// Deep copy: engines are duplicated (fresh, independent inference
    /// state) — required when an outer particle filter clones a state that
    /// embeds a nested engine.
    pub fn deep_clone(&self) -> MufValue {
        match self {
            MufValue::Tuple(xs) => MufValue::Tuple(xs.iter().map(MufValue::deep_clone).collect()),
            MufValue::Engine(e) => {
                MufValue::Engine(EngineRef(Rc::new(RefCell::new(e.0.borrow().clone()))))
            }
            other => other.clone(),
        }
    }

    /// Visits every embedded core [`Value`] mutably (GC-root reporting and
    /// end-of-instant forcing for the delayed-sampling engines).
    pub fn for_each_value_mut(&mut self, f: &mut dyn FnMut(&mut Value)) {
        match self {
            MufValue::V(v) => f(v),
            MufValue::Tuple(xs) => {
                for x in xs {
                    x.for_each_value_mut(f);
                }
            }
            MufValue::Nil | MufValue::Closure(_) | MufValue::Engine(_) | MufValue::Posterior(_) => {
            }
        }
    }
}

/// Persistent environment (immutable linked list, cheap to extend and
/// capture in closures).
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Rc<EnvNode>>);

#[derive(Debug)]
struct EnvNode {
    name: String,
    value: MufValue,
    next: Env,
}

impl Env {
    /// The empty environment.
    pub fn empty() -> Env {
        Env(None)
    }

    /// Extends with one binding.
    pub fn bind(&self, name: impl Into<String>, value: MufValue) -> Env {
        self.clone().bind_owned(name, value)
    }

    /// Extends with one binding, consuming the tail — avoids the `Rc`
    /// clone per binding when the caller already owns the environment.
    pub fn bind_owned(self, name: impl Into<String>, value: MufValue) -> Env {
        Env(Some(Rc::new(EnvNode {
            name: name.into(),
            value,
            next: self,
        })))
    }

    /// Whether the environment has no bindings.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Looks a name up.
    pub fn lookup(&self, name: &str) -> Option<&MufValue> {
        let mut cur = self;
        while let Env(Some(node)) = cur {
            if node.name == name {
                return Some(&node.value);
            }
            cur = &node.next;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_shadows_and_persists() {
        let e0 = Env::empty();
        let e1 = e0.bind("x", MufValue::V(Value::Int(1)));
        let e2 = e1.bind("x", MufValue::V(Value::Int(2)));
        assert!(matches!(e2.lookup("x"), Some(MufValue::V(Value::Int(2)))));
        assert!(matches!(e1.lookup("x"), Some(MufValue::V(Value::Int(1)))));
        assert!(e0.lookup("x").is_none());
    }

    #[test]
    fn as_core_converts_tuples_to_pairs() {
        let t = MufValue::Tuple(vec![
            MufValue::V(Value::Int(1)),
            MufValue::V(Value::Int(2)),
            MufValue::V(Value::Int(3)),
        ]);
        let v = t.as_core().unwrap();
        assert_eq!(
            v,
            Value::pair(Value::Int(1), Value::pair(Value::Int(2), Value::Int(3)))
        );
    }

    #[test]
    fn as_core_rejects_nil_and_closures() {
        assert!(MufValue::Nil.as_core().is_err());
        let c = MufValue::Closure(Rc::new(Closure {
            pat: MufPat::Wildcard,
            body: Rc::new(MufExpr::Const(Const::Unit)),
            env: Env::empty(),
        }));
        assert!(c.as_core().is_err());
    }

    #[test]
    fn for_each_value_mut_visits_nested() {
        let mut t = MufValue::Tuple(vec![
            MufValue::V(Value::Float(1.0)),
            MufValue::Tuple(vec![MufValue::V(Value::Float(2.0)), MufValue::Nil]),
        ]);
        let mut n = 0;
        t.for_each_value_mut(&mut |_| n += 1);
        assert_eq!(n, 2);
    }
}
