//! Scheduling and causality analysis (§3.1).
//!
//! `where rec` equations are mutually recursive; before compilation they
//! must be reordered so that an equation defining `x` precedes every
//! equation that reads `x` *instantaneously* (reads through `last` do not
//! count — they break cycles, exactly as in the paper). `init` equations
//! are grouped first. Instantaneous cycles are causality errors.

use crate::ast::{Eq, Expr, Program};
use crate::diag::Code;
use crate::error::{LangError, Stage};
use std::collections::{HashMap, HashSet};

/// Schedules every `where rec` block of a program (recursively), returning
/// the scheduled program.
///
/// # Errors
///
/// [`crate::error::Stage::Schedule`] errors on instantaneous dependency
/// cycles, listing the variables involved.
pub fn schedule_program(p: &Program) -> Result<Program, LangError> {
    let mut out = p.clone();
    for node in &mut out.nodes {
        node.body = schedule_expr(&node.body)?;
    }
    Ok(out)
}

/// Schedules one expression tree.
///
/// # Errors
///
/// See [`schedule_program`].
pub fn schedule_expr(e: &Expr) -> Result<Expr, LangError> {
    Ok(match e {
        Expr::At(inner, p) => Expr::at(schedule_expr(inner)?, *p),
        Expr::Const(_) | Expr::Var(_) | Expr::Last(_) => e.clone(),
        Expr::Pair(a, b) => Expr::pair(schedule_expr(a)?, schedule_expr(b)?),
        Expr::Op(op, args) => Expr::Op(
            *op,
            args.iter().map(schedule_expr).collect::<Result<_, _>>()?,
        ),
        Expr::App(f, arg) => Expr::App(f.clone(), Box::new(schedule_expr(arg)?)),
        Expr::Where { body, eqs } => {
            let body = schedule_expr(body)?;
            let eqs = schedule_equations(eqs)?;
            Expr::Where {
                body: Box::new(body),
                eqs,
            }
        }
        Expr::Present { cond, then, els } => Expr::Present {
            cond: Box::new(schedule_expr(cond)?),
            then: Box::new(schedule_expr(then)?),
            els: Box::new(schedule_expr(els)?),
        },
        Expr::If { cond, then, els } => Expr::If {
            cond: Box::new(schedule_expr(cond)?),
            then: Box::new(schedule_expr(then)?),
            els: Box::new(schedule_expr(els)?),
        },
        Expr::Reset { body, every } => Expr::Reset {
            body: Box::new(schedule_expr(body)?),
            every: Box::new(schedule_expr(every)?),
        },
        Expr::Sample(d) => Expr::Sample(Box::new(schedule_expr(d)?)),
        Expr::Observe(d, v) => {
            Expr::Observe(Box::new(schedule_expr(d)?), Box::new(schedule_expr(v)?))
        }
        Expr::Factor(w) => Expr::Factor(Box::new(schedule_expr(w)?)),
        Expr::ValueOp(x) => Expr::ValueOp(Box::new(schedule_expr(x)?)),
        Expr::Infer {
            particles,
            node,
            arg,
        } => Expr::Infer {
            particles: *particles,
            node: node.clone(),
            arg: Box::new(schedule_expr(arg)?),
        },
        Expr::Arrow(a, b) => Expr::Arrow(Box::new(schedule_expr(a)?), Box::new(schedule_expr(b)?)),
        Expr::Fby(a, b) => Expr::Fby(Box::new(schedule_expr(a)?), Box::new(schedule_expr(b)?)),
        Expr::Pre(x) => Expr::Pre(Box::new(schedule_expr(x)?)),
    })
}

/// Orders equations: `init`s first (source order), then definitions in a
/// stable topological order of instantaneous dependencies.
fn schedule_equations(eqs: &[Eq]) -> Result<Vec<Eq>, LangError> {
    let mut inits = Vec::new();
    let mut defs: Vec<(String, Expr)> = Vec::new();
    for eq in eqs {
        match eq {
            Eq::Init { .. } => inits.push(eq.clone()),
            Eq::Def { name, expr } => defs.push((name.clone(), schedule_expr(expr)?)),
            Eq::Automaton { .. } => {
                return Err(LangError::new(
                    Stage::Schedule,
                    "automaton must be expanded before scheduling",
                ))
            }
        }
    }

    let index_of: HashMap<&str, usize> = defs
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (n.as_str(), i))
        .collect();

    // dependencies[j] = set of definition indices j reads instantaneously.
    let mut dependencies: Vec<HashSet<usize>> = vec![HashSet::new(); defs.len()];
    for (j, (_, expr)) in defs.iter().enumerate() {
        let mut reads = HashSet::new();
        instantaneous_reads(expr, &mut HashSet::new(), &mut reads);
        for r in reads {
            if let Some(&i) = index_of.get(r.as_str()) {
                if i != j {
                    dependencies[j].insert(i);
                }
            }
        }
        // Self-dependency: x = f(x) without last is an instantaneous loop.
        let (name, expr) = &defs[j];
        let mut self_reads = HashSet::new();
        instantaneous_reads(expr, &mut HashSet::new(), &mut self_reads);
        if self_reads.contains(name.as_str()) {
            return Err(LangError::new(
                Stage::Schedule,
                format!(
                    "instantaneous cycle: `{name}` depends on itself (use `last {name}` or `pre`)"
                ),
            )
            .with_code(Code::SCHED_CYCLE)
            .with_pos(expr.span()));
        }
    }

    // Kahn's algorithm with a stable order (smallest original index first).
    let n = defs.len();
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, deps) in dependencies.iter().enumerate() {
        indegree[j] = deps.len();
        for &i in deps {
            dependents[i].push(j);
        }
    }
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&j| indegree[j] == 0)
        .map(std::cmp::Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(j)) = ready.pop() {
        order.push(j);
        for &k in &dependents[j] {
            indegree[k] -= 1;
            if indegree[k] == 0 {
                ready.push(std::cmp::Reverse(k));
            }
        }
    }
    if order.len() != n {
        let cyclic: Vec<usize> = (0..n).filter(|j| !order.contains(j)).collect();
        let names: Vec<&str> = cyclic.iter().map(|&j| defs[j].0.as_str()).collect();
        let mut err = LangError::new(
            Stage::Schedule,
            format!(
                "instantaneous dependency cycle between: {}",
                names.join(", ")
            ),
        )
        .with_code(Code::SCHED_CYCLE)
        .with_pos(cyclic.first().and_then(|&j| defs[j].1.span()))
        .with_note("break the cycle with a delay: `pre`, `fby`, or `last`");
        for &j in cyclic.iter().skip(1) {
            if let Some(pos) = defs[j].1.span() {
                err = err.with_label(pos, format!("`{}` is defined here", defs[j].0));
            }
        }
        return Err(err);
    }

    let mut scheduled = inits;
    // Move the definitions out in topological order.
    let mut slots: Vec<Option<(String, Expr)>> = defs.into_iter().map(Some).collect();
    for j in order {
        let (name, expr) = slots[j].take().expect("each index scheduled once");
        scheduled.push(Eq::Def { name, expr });
    }
    Ok(scheduled)
}

/// Collects variables read instantaneously by `e` (not through `last`,
/// and not shadowed by an inner `where`).
fn instantaneous_reads(e: &Expr, shadowed: &mut HashSet<String>, out: &mut HashSet<String>) {
    match e {
        Expr::At(inner, _) => instantaneous_reads(inner, shadowed, out),
        Expr::Const(_) => {}
        Expr::Var(x) => {
            if !shadowed.contains(x.as_str()) {
                out.insert(x.clone());
            }
        }
        Expr::Last(_) => {}
        Expr::Pair(a, b) => {
            instantaneous_reads(a, shadowed, out);
            instantaneous_reads(b, shadowed, out);
        }
        Expr::Op(_, args) => {
            for a in args {
                instantaneous_reads(a, shadowed, out);
            }
        }
        Expr::App(_, arg) => instantaneous_reads(arg, shadowed, out),
        Expr::Where { body, eqs } => {
            let added: Vec<String> = eqs
                .iter()
                .filter(|eq| !matches!(eq, Eq::Automaton { .. }))
                .map(|eq| eq.name().to_string())
                .filter(|n| shadowed.insert(n.clone()))
                .collect();
            for eq in eqs {
                if let Eq::Def { expr, .. } = eq {
                    instantaneous_reads(expr, shadowed, out);
                }
            }
            instantaneous_reads(body, shadowed, out);
            for n in added {
                shadowed.remove(&n);
            }
        }
        Expr::Present { cond, then, els } | Expr::If { cond, then, els } => {
            instantaneous_reads(cond, shadowed, out);
            instantaneous_reads(then, shadowed, out);
            instantaneous_reads(els, shadowed, out);
        }
        Expr::Reset { body, every } => {
            instantaneous_reads(body, shadowed, out);
            instantaneous_reads(every, shadowed, out);
        }
        Expr::Sample(d) => instantaneous_reads(d, shadowed, out),
        Expr::Observe(d, v) => {
            instantaneous_reads(d, shadowed, out);
            instantaneous_reads(v, shadowed, out);
        }
        Expr::Factor(w) => instantaneous_reads(w, shadowed, out),
        Expr::ValueOp(x) => instantaneous_reads(x, shadowed, out),
        Expr::Infer { arg, .. } => instantaneous_reads(arg, shadowed, out),
        Expr::Arrow(a, b) | Expr::Fby(a, b) => {
            instantaneous_reads(a, shadowed, out);
            instantaneous_reads(b, shadowed, out);
        }
        Expr::Pre(x) => {
            // `pre e` reads e this instant to store it; but its *value*
            // this instant does not depend on e. For scheduling, what
            // matters is whether e must already be computed: it must (the
            // state update reads it at the end of the step), yet because
            // the read value is only used next instant, Zelus breaks the
            // dependency here. We do the same.
            let _ = x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn schedule(src: &str) -> Result<Program, LangError> {
        schedule_program(&parse_program(src).unwrap())
    }

    fn eq_names(e: &Expr) -> Vec<String> {
        match e {
            Expr::Where { eqs, .. } => eqs.iter().map(|q| q.name().to_string()).collect(),
            other => panic!("expected where, got {other:?}"),
        }
    }

    #[test]
    fn reorders_by_dependency() {
        let p = schedule("let node f x = z where rec z = y + 1. and y = x * 2.").unwrap();
        assert_eq!(eq_names(&p.nodes[0].body), vec!["y", "z"]);
    }

    #[test]
    fn keeps_source_order_when_independent() {
        let p = schedule("let node f x = a where rec a = x and b = x and c = x").unwrap();
        assert_eq!(eq_names(&p.nodes[0].body), vec!["a", "b", "c"]);
    }

    #[test]
    fn inits_come_first() {
        let p = schedule("let node f x = y where rec y = last y + x and init y = 0.").unwrap();
        assert_eq!(eq_names(&p.nodes[0].body), vec!["y", "y"]);
        match &p.nodes[0].body {
            Expr::Where { eqs, .. } => {
                assert!(matches!(eqs[0], Eq::Init { .. }));
                assert!(matches!(eqs[1], Eq::Def { .. }));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn last_breaks_cycles() {
        schedule(
            "let node f x = y where rec init y = 0. and init z = 0. \
             and y = last z + x and z = y",
        )
        .unwrap();
    }

    #[test]
    fn pre_breaks_cycles() {
        schedule("let node f x = y where rec y = 0. -> pre y + x").unwrap();
    }

    #[test]
    fn instantaneous_self_cycle_rejected() {
        let err = schedule("let node f x = y where rec y = y + x").unwrap_err();
        assert_eq!(err.stage, Stage::Schedule);
        assert!(err.message.contains("y"));
    }

    #[test]
    fn two_variable_cycle_rejected() {
        let err = schedule("let node f x = a where rec a = b + x and b = a").unwrap_err();
        assert_eq!(err.stage, Stage::Schedule);
        assert!(err.message.contains("a") && err.message.contains("b"));
    }

    #[test]
    fn inner_where_shadows_outer_names() {
        // The inner `y` is local; no dependency on the outer equation y.
        let p = schedule("let node f x = z where rec z = (y where rec y = x) and y = z");
        assert!(p.is_ok());
    }
}
