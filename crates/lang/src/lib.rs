//! # probzelus-lang
//!
//! The ProbZelus language front end and µF back end (§3–§4 of the paper):
//! lexer, parser, kind system (D/P, Fig. 7), data-type checker,
//! initialization analysis, scheduling/causality analysis, desugaring to
//! the kernel of Fig. 6, compilation C(·)/A(·) to the first-order
//! functional language µF (Fig. 10/20/21), and a µF interpreter whose
//! probabilistic operators are routed through the inference engines of
//! [`probzelus_core`].

pub mod analysis;
pub mod ast;
pub mod automata;
pub mod compile;
pub mod diag;
pub mod error;
pub mod eval;
pub mod initcheck;
pub mod kinds;
pub mod lexer;
pub mod muf;
pub mod muf_pretty;
pub mod parser;
pub mod pipeline;
pub mod pretty;
pub mod schedule;
pub mod tape;
pub mod transform;
pub mod types;

pub use analysis::bounded::Verdict;
pub use analysis::effects::{Effect, EffectReport};
pub use ast::{Const, Eq, Expr, NodeDecl, OpName, Pattern, Program};
pub use diag::{Code, Diagnostic, Severity};
pub use error::{LangError, Pos, Stage};
pub use eval::{ExecBackend, Instance, MufEngine, MufPrelude, Options};
pub use kinds::Kind;
pub use muf::{MufProgram, MufValue};
pub use pipeline::{
    check_source, compile_source, compile_source_opt, optimize_source, Checked, Compiled, Optimized,
};
pub use transform::opt::{HoistPlan, OptConfig, OptReport};
pub use types::{NodeSig, Ty};
