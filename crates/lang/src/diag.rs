//! Structured diagnostics for the language pipeline.
//!
//! Every pass reports through [`Diagnostic`]: a `PZ0xxx` [`Code`], a
//! [`Severity`], a primary source position, optional secondary labels and
//! notes. Diagnostics render two ways: a rustc-style text snippet
//! ([`Diagnostic::render`]) and a machine-readable JSON object
//! ([`Diagnostic::to_json`]) consumed by `pzc check --json`.
//!
//! The code catalog is closed: [`explain`] documents every code, and the
//! test suite asserts the table stays total.

use crate::error::{LangError, Pos, Stage};
use std::fmt;

/// A diagnostic code, displayed as `PZ0xxx`.
///
/// Numbering is by pass: `PZ00xx` lex/parse, `PZ01xx` kinds, `PZ02xx`
/// types, `PZ03xx` initialization, `PZ04xx` scheduling, `PZ05xx`
/// boundedness, `PZ06xx` lints, `PZ07xx` compile/runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Code(pub u16);

impl Code {
    /// Lexical error.
    pub const LEX: Code = Code(1);
    /// Syntax error.
    pub const PARSE: Code = Code(2);
    /// Probabilistic expression in a deterministic position.
    pub const KIND_PROB_IN_DET: Code = Code(101);
    /// Unknown node in an application (kind pass).
    pub const KIND_UNKNOWN_NODE: Code = Code(102);
    /// Type mismatch.
    pub const TYPE_MISMATCH: Code = Code(201);
    /// Unbound variable.
    pub const TYPE_UNBOUND: Code = Code(202);
    /// Unknown node in an application (type pass).
    pub const TYPE_UNKNOWN_NODE: Code = Code(203);
    /// Recursive (infinite) type.
    pub const TYPE_RECURSIVE: Code = Code(204);
    /// Value may be uninitialized at the first instant.
    pub const INIT_UNDEFINED: Code = Code(301);
    /// `last x` without a reaching `init x`.
    pub const INIT_NO_INIT: Code = Code(302);
    /// Instantaneous dependency cycle.
    pub const SCHED_CYCLE: Code = Code(401);
    /// Unbounded delayed-sampling chain.
    pub const UNBOUNDED_CHAIN: Code = Code(501);
    /// Inference method does not match the boundedness verdict.
    pub const METHOD_MISMATCH: Code = Code(502);
    /// Particle-invariant equations hoisted to a shared prelude.
    pub const OPT_HOISTED_PRELUDE: Code = Code(503);
    /// Lint: stream defined but never read.
    pub const LINT_UNUSED_STREAM: Code = Code(601);
    /// Lint: observing a constant distribution.
    pub const LINT_OBSERVE_CONST: Code = Code(602);
    /// Lint: probabilistic node with no `observe`/`factor`.
    pub const LINT_RESAMPLE_FREE: Code = Code(603);
    /// Optimizer: dead stream removed.
    pub const OPT_DEAD_STREAM: Code = Code(604);
    /// Optimizer: common subexpression factored out.
    pub const OPT_CSE: Code = Code(605);
    /// Optimizer: equation folded to a constant.
    pub const OPT_CONST_FOLD: Code = Code(606);
    /// Internal compilation error.
    pub const COMPILE: Code = Code(701);
    /// Runtime (µF evaluation) error.
    pub const EVAL: Code = Code(702);

    /// Parses `PZ0xxx` (case-insensitive, the `PZ` prefix optional).
    pub fn parse(s: &str) -> Option<Code> {
        let digits = s
            .strip_prefix("PZ")
            .or_else(|| s.strip_prefix("pz"))
            .unwrap_or(s);
        let n: u16 = digits.parse().ok()?;
        let code = Code(n);
        explain(code).map(|_| code)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PZ{:04}", self.0)
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style / modeling advice; never fails a build unless `--lint`.
    Lint,
    /// Suspicious but legal; fails only under `--lint`.
    Warning,
    /// The program is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Lint => "lint",
        })
    }
}

/// A secondary position with an explanatory message.
#[derive(Debug, Clone, PartialEq)]
pub struct Label {
    /// Where the label points.
    pub pos: Pos,
    /// What it says.
    pub message: String,
}

/// A structured, renderable diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The catalog code.
    pub code: Code,
    /// Error, warning, or lint.
    pub severity: Severity,
    /// The pipeline stage that produced it, if any.
    pub stage: Option<Stage>,
    /// The headline message.
    pub message: String,
    /// Primary source position, when known.
    pub pos: Option<Pos>,
    /// Secondary labels.
    pub labels: Vec<Label>,
    /// Notes rendered after the snippet.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// An error diagnostic.
    pub fn error(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            stage: None,
            message: message.into(),
            pos: None,
            labels: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// A warning diagnostic.
    pub fn warning(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// A lint diagnostic.
    pub fn lint(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Lint,
            ..Diagnostic::error(code, message)
        }
    }

    /// Sets the primary position.
    #[must_use]
    pub fn with_pos(mut self, pos: Option<Pos>) -> Diagnostic {
        self.pos = pos;
        self
    }

    /// Adds a secondary label.
    #[must_use]
    pub fn with_label(mut self, pos: Pos, message: impl Into<String>) -> Diagnostic {
        self.labels.push(Label {
            pos,
            message: message.into(),
        });
        self
    }

    /// Adds a note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Converts a pipeline error, using its code when set and the stage
    /// default otherwise.
    pub fn from_error(e: &LangError) -> Diagnostic {
        let mut d = Diagnostic::error(e.code.unwrap_or_else(|| stage_code(e.stage)), &e.message);
        d.stage = Some(e.stage);
        d.pos = e.pos;
        d.labels = e
            .labels
            .iter()
            .map(|(pos, message)| Label {
                pos: *pos,
                message: message.clone(),
            })
            .collect();
        d.notes = e.notes.clone();
        d
    }

    /// Renders in rustc style against the source text.
    ///
    /// ```text
    /// error[PZ0101]: probabilistic expression in deterministic position
    ///   --> examples/zelus/bad/kind.zl:2:30
    ///    |
    ///  2 | let node f x = sample(gaussian(sample(...), 1.))
    ///    |                                ^
    ///    = note: ...
    /// ```
    pub fn render(&self, file: &str, src: &str) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        let width = self
            .pos
            .iter()
            .chain(self.labels.iter().map(|l| &l.pos))
            .map(|p| digits(p.line))
            .max()
            .unwrap_or(1);
        match self.pos {
            Some(pos) => {
                out.push_str(&format!("{:width$}--> {file}:{pos}\n", ""));
                snippet(&mut out, src, pos, "^", width);
            }
            None => out.push_str(&format!("{:width$}--> {file}\n", "")),
        }
        for label in &self.labels {
            out.push_str(&format!(
                "{:width$}--> {file}:{}: {}\n",
                "", label.pos, label.message
            ));
            snippet(&mut out, src, label.pos, "-", width);
        }
        for note in &self.notes {
            out.push_str(&format!("{:width$} = note: {note}\n", ""));
        }
        out
    }

    /// Renders as one JSON object (stable key order, no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            r#"{{"code":"{}","severity":"{}","#,
            self.code, self.severity
        );
        if let Some(stage) = self.stage {
            s.push_str(&format!(r#""stage":"{}","#, stage_name(stage)));
        }
        s.push_str(&format!(r#""message":"{}""#, json_escape(&self.message)));
        if let Some(pos) = self.pos {
            s.push_str(&format!(
                r#","pos":{{"line":{},"col":{}}}"#,
                pos.line, pos.col
            ));
        }
        if !self.labels.is_empty() {
            s.push_str(r#","labels":["#);
            for (i, l) in self.labels.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    r#"{{"line":{},"col":{},"message":"{}"}}"#,
                    l.pos.line,
                    l.pos.col,
                    json_escape(&l.message)
                ));
            }
            s.push(']');
        }
        if !self.notes.is_empty() {
            s.push_str(r#","notes":["#);
            for (i, n) in self.notes.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(r#""{}""#, json_escape(n)));
            }
            s.push(']');
        }
        s.push('}');
        s
    }
}

fn digits(n: u32) -> usize {
    (n.checked_ilog10().unwrap_or(0) + 1) as usize
}

/// Appends the `| source line` + caret block for one position.
fn snippet(out: &mut String, src: &str, pos: Pos, mark: &str, width: usize) {
    let Some(line) = src.lines().nth(pos.line.saturating_sub(1) as usize) else {
        return;
    };
    let line = line.replace('\t', " ");
    out.push_str(&format!("{:width$} |\n", ""));
    out.push_str(&format!("{:width$} | {line}\n", pos.line));
    let caret_col = (pos.col.max(1) as usize).min(line.len() + 1);
    out.push_str(&format!("{:width$} | {:>caret_col$}\n", "", mark));
}

/// The default code for errors a stage reports without a specific one.
pub fn stage_code(stage: Stage) -> Code {
    match stage {
        Stage::Lex => Code::LEX,
        Stage::Parse => Code::PARSE,
        Stage::Kind => Code::KIND_PROB_IN_DET,
        Stage::Type => Code::TYPE_MISMATCH,
        Stage::Init => Code::INIT_UNDEFINED,
        Stage::Schedule => Code::SCHED_CYCLE,
        Stage::Compile => Code::COMPILE,
        Stage::Eval => Code::EVAL,
    }
}

fn stage_name(stage: Stage) -> &'static str {
    match stage {
        Stage::Lex => "lex",
        Stage::Parse => "parse",
        Stage::Kind => "kind",
        Stage::Type => "type",
        Stage::Init => "init",
        Stage::Schedule => "schedule",
        Stage::Compile => "compile",
        Stage::Eval => "eval",
    }
}

/// Every code in the catalog, for `--explain` enumeration and the
/// totality test.
pub const ALL_CODES: &[Code] = &[
    Code::LEX,
    Code::PARSE,
    Code::KIND_PROB_IN_DET,
    Code::KIND_UNKNOWN_NODE,
    Code::TYPE_MISMATCH,
    Code::TYPE_UNBOUND,
    Code::TYPE_UNKNOWN_NODE,
    Code::TYPE_RECURSIVE,
    Code::INIT_UNDEFINED,
    Code::INIT_NO_INIT,
    Code::SCHED_CYCLE,
    Code::UNBOUNDED_CHAIN,
    Code::METHOD_MISMATCH,
    Code::OPT_HOISTED_PRELUDE,
    Code::LINT_UNUSED_STREAM,
    Code::LINT_OBSERVE_CONST,
    Code::LINT_RESAMPLE_FREE,
    Code::OPT_DEAD_STREAM,
    Code::OPT_CSE,
    Code::OPT_CONST_FOLD,
    Code::COMPILE,
    Code::EVAL,
];

/// The lint name used by `(*@ allow name *)` suppression comments, for
/// suppressible codes.
pub fn lint_name(code: Code) -> Option<&'static str> {
    match code {
        Code::UNBOUNDED_CHAIN => Some("unbounded-chain"),
        Code::LINT_UNUSED_STREAM => Some("unused-stream"),
        Code::LINT_OBSERVE_CONST => Some("observe-constant"),
        Code::LINT_RESAMPLE_FREE => Some("resample-free-infer"),
        _ => None,
    }
}

/// Long-form `pzc --explain` text. Total over [`ALL_CODES`].
pub fn explain(code: Code) -> Option<&'static str> {
    Some(match code {
        Code::LEX => {
            "PZ0001: lexical error.\n\nThe source text contains a character or token the lexer does \
             not recognize, or an unterminated `(* ... *)` comment."
        }
        Code::PARSE => {
            "PZ0002: syntax error.\n\nThe token stream does not form a valid program. The message \
             names the token found and what was expected."
        }
        Code::KIND_PROB_IN_DET => {
            "PZ0101: probabilistic expression in a deterministic position.\n\nThe kind system \
             (Fig. 7 of the paper) separates deterministic (D) from probabilistic (P) \
             expressions. Arguments of `sample`, `observe`, `factor`, conditions, and `infer` \
             inputs must be deterministic; `sample`/`observe`/`factor` may only appear inside a \
             probabilistic node run under `infer`."
        }
        Code::KIND_UNKNOWN_NODE => {
            "PZ0102: application of an unknown node.\n\nThe applied name is neither a declared \
             node (in scope, i.e. declared earlier) nor a built-in operator."
        }
        Code::TYPE_MISMATCH => {
            "PZ0201: type mismatch.\n\nTwo types that must be equal cannot be unified. The \
             message shows both, after resolving what is known."
        }
        Code::TYPE_UNBOUND => {
            "PZ0202: unbound variable.\n\nThe variable is neither a node parameter, nor defined \
             by an equation in scope, nor initialized by `init`."
        }
        Code::TYPE_UNKNOWN_NODE => {
            "PZ0203: application of an unknown node (type pass).\n\nThe applied name has no \
             recorded signature. Nodes must be declared before use."
        }
        Code::TYPE_RECURSIVE => {
            "PZ0204: recursive type.\n\nUnification would build an infinite type (the occurs \
             check failed), e.g. a stream that would have to contain itself."
        }
        Code::INIT_UNDEFINED => {
            "PZ0301: value may be undefined at the first instant.\n\nAn uninitialized delay \
             (`pre`) can reach an effectful position (an output, `sample`, `observe`, a \
             condition) at instant 0. Give it an initial value with `->` or `init`/`last`."
        }
        Code::INIT_NO_INIT => {
            "PZ0302: `last x` without `init x`.\n\n`last x` reads the previous value of `x`; at \
             the first instant that value must come from an `init x = c` equation in the same \
             `where` block."
        }
        Code::SCHED_CYCLE => {
            "PZ0401: instantaneous dependency cycle.\n\nA set of equations depends on itself \
             within one instant, so no execution order exists. Break the cycle with a delay: \
             `pre`, `fby`, or `last`."
        }
        Code::UNBOUNDED_CHAIN => {
            "PZ0501: unbounded delayed-sampling chain.\n\nThe boundedness analysis (an abstract \
             interpretation over delayed-sampling shapes Const < Det < Sampled < Marginal(k)) \
             found a random variable carried across instants by `pre`/`last` whose marginal \
             chain depth grows every tick: some sampled parent is never consumed by `observe` \
             or `value` on every path. Under streaming delayed sampling the runtime graph then \
             grows without bound. The witness cycle names the variables involved. Observe or \
             `value` the chain, or run the node under a particle filter.\n\nSuppress per node \
             with `(*@ allow unbounded-chain *)`."
        }
        Code::METHOD_MISMATCH => {
            "PZ0502: inference method contradicts the boundedness verdict.\n\nEither classic \
             delayed sampling was selected for a node the analyzer proved bounded (streaming \
             delayed sampling would give the same posterior in bounded memory), or streaming \
             delayed sampling was selected for a node it proved unbounded (the runtime graph \
             will still grow). Reported at run time, and on the `obs` event stream as \
             `check.advisory` when telemetry is enabled."
        }
        Code::OPT_HOISTED_PRELUDE => {
            "PZ0503: particle-invariant equations hoisted to a shared prelude.\n\nThe effect \
             analysis proved these equations deterministic (no `sample`/`observe`/`factor` \
             reachable) and particle-invariant (their value depends only on the node input, \
             the clock, and other invariant state), so the optimizer moved them into a \
             prelude node evaluated once per tick and broadcast to every particle, instead \
             of being re-evaluated N times. Reported by `pzc opt`; purely informational — \
             posteriors are bit-identical with and without the transform."
        }
        Code::LINT_UNUSED_STREAM => {
            "PZ0601: stream defined but never read.\n\nThe equation's variable is read by no \
             other equation and not returned by the node body, so the stream (and any \
             probabilistic choices in it) is dead. Prefix the name with `_` or remove the \
             equation.\n\nSuppress per node with `(*@ allow unused-stream *)`."
        }
        Code::LINT_OBSERVE_CONST => {
            "PZ0602: observing a constant distribution.\n\nThe first argument of `observe` has \
             shape Const: it depends on no sampled variable, so the observation reweights \
             nothing and conditions nothing — a common modeling bug (e.g. observing a prior \
             literal instead of the stream carrying the latent state).\n\nSuppress per node \
             with `(*@ allow observe-constant *)`."
        }
        Code::LINT_RESAMPLE_FREE => {
            "PZ0603: probabilistic node with no `observe`/`factor`.\n\nNo path through the node \
             updates particle weights, so inference degenerates to forward sampling and \
             `infer` pays for particles that are never reweighted.\n\nSuppress per node with \
             `(*@ allow resample-free-infer *)`."
        }
        Code::OPT_DEAD_STREAM => {
            "PZ0604: dead stream removed.\n\nThe optimizer's dead-stream elimination (the \
             transform counterpart of lint PZ0601) removed an equation whose variable is \
             read by no live equation and not returned by the node body. Only effect-free \
             equations are removed: anything that can `sample`, `observe`, `factor`, or \
             allocate an inference engine is kept even when unread, so posteriors and the \
             engine seed order are unchanged. Reported by `pzc opt`."
        }
        Code::OPT_CSE => {
            "PZ0605: common subexpression factored out.\n\nThe optimizer found a pure, \
             stateless expression computed more than once in the same equation set and \
             introduced a fresh equation for it, replacing every occurrence with the new \
             stream. Only strict deterministic operator trees over variables, `last` reads \
             and constants are factored, so evaluation order and results are unchanged. \
             Reported by `pzc opt`."
        }
        Code::OPT_CONST_FOLD => {
            "PZ0606: equation folded to a constant.\n\nConstant propagation and folding \
             reduced this equation's right-hand side to a literal using the runtime's own \
             value operators (so folded floats are bit-identical to what evaluation would \
             produce). Operations that would fail at run time (e.g. division by zero) are \
             left unfolded to preserve the error. Reported by `pzc opt`."
        }
        Code::COMPILE => {
            "PZ0701: internal compilation error.\n\nThe kernel-to-µF compiler rejected the \
             program (e.g. a derived form survived desugaring, or duplicate definitions). \
             These indicate a pipeline bug if reached from `pzc`."
        }
        Code::EVAL => {
            "PZ0702: runtime error.\n\nµF evaluation failed (division by zero, invalid \
             distribution parameters, engine errors)."
        }
        _ => return None,
    })
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_display_and_parse() {
        assert_eq!(Code::UNBOUNDED_CHAIN.to_string(), "PZ0501");
        assert_eq!(Code::parse("PZ0501"), Some(Code::UNBOUNDED_CHAIN));
        assert_eq!(Code::parse("pz0101"), Some(Code::KIND_PROB_IN_DET));
        assert_eq!(Code::parse("0401"), Some(Code::SCHED_CYCLE));
        assert_eq!(Code::parse("PZ9999"), None);
        assert_eq!(Code::parse("garbage"), None);
    }

    #[test]
    fn explain_is_total_over_the_catalog() {
        for &code in ALL_CODES {
            let text = explain(code).unwrap_or_else(|| panic!("no --explain text for {code}"));
            assert!(
                text.starts_with(&code.to_string()),
                "{code} explain text must start with its code"
            );
        }
    }

    #[test]
    fn render_includes_snippet_and_caret() {
        let src = "let node f x = x\nlet node g y = sample(y)\n";
        let d = Diagnostic::error(Code::KIND_PROB_IN_DET, "sample outside infer")
            .with_pos(Some(Pos { line: 2, col: 16 }))
            .with_note("wrap the node in `infer`");
        let r = d.render("f.zl", src);
        assert!(r.contains("error[PZ0101]: sample outside infer"));
        assert!(r.contains("--> f.zl:2:16"));
        assert!(r.contains("2 | let node g y = sample(y)"));
        assert!(r.contains("= note: wrap the node in `infer`"));
        // Caret lands under the `s` of `sample` (column 16).
        let caret_line = r.lines().find(|l| l.trim_end().ends_with('^')).unwrap();
        assert_eq!(caret_line.find('^').unwrap(), "2 | ".len() + 15);
    }

    #[test]
    fn json_shape_is_stable() {
        let d = Diagnostic::warning(Code::UNBOUNDED_CHAIN, "chain grows: \"x\"")
            .with_pos(Some(Pos { line: 3, col: 9 }))
            .with_label(Pos { line: 1, col: 1 }, "defined here")
            .with_note("observe the chain");
        assert_eq!(
            d.to_json(),
            r#"{"code":"PZ0501","severity":"warning","message":"chain grows: \"x\"","pos":{"line":3,"col":9},"labels":[{"line":1,"col":1,"message":"defined here"}],"notes":["observe the chain"]}"#
        );
    }

    #[test]
    fn from_error_uses_stage_default_code() {
        let e = LangError::new(Stage::Schedule, "cycle");
        let d = Diagnostic::from_error(&e);
        assert_eq!(d.code, Code::SCHED_CYCLE);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.stage, Some(Stage::Schedule));
    }

    #[test]
    fn lint_names_cover_the_suppressible_codes() {
        assert_eq!(lint_name(Code::LINT_UNUSED_STREAM), Some("unused-stream"));
        assert_eq!(lint_name(Code::TYPE_MISMATCH), None);
    }
}
