//! Data-type checking (§3.2).
//!
//! A monomorphic unification-based checker over the types
//! `float | int | bool | unit | t * t | t dist | α`, with the probabilistic
//! operator rules of §3.2 (`sample : t dist -> t`,
//! `observe : t dist * t -> unit`, `factor : float -> unit`,
//! `infer : t -> t dist`).
//!
//! Numeric literals are overloaded: an integer literal takes a fresh
//! *numeric* type variable that unifies with `int` or `float`; literals
//! still unconstrained after checking default to `float` and the program is
//! elaborated in place (so `gaussian(0 -> pre x, 1.)`, as the paper writes
//! it, type-checks with `0` read as `0.`).

use crate::ast::{Const, Eq, Expr, NodeDecl, OpName, Pattern, Program};
use crate::diag::Code;
use crate::error::{LangError, Pos, Stage};
use std::collections::HashMap;

/// Types of the surface language.
#[derive(Debug, Clone, PartialEq)]
pub enum Ty {
    /// `float`.
    Float,
    /// `int`.
    Int,
    /// `bool`.
    Bool,
    /// `unit`.
    Unit,
    /// Product `t1 * t2`.
    Pair(Box<Ty>, Box<Ty>),
    /// Distribution `t dist`.
    Dist(Box<Ty>),
    /// Unification variable.
    Var(u32),
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ty::Float => write!(f, "float"),
            Ty::Int => write!(f, "int"),
            Ty::Bool => write!(f, "bool"),
            Ty::Unit => write!(f, "unit"),
            Ty::Pair(a, b) => write!(f, "({a} * {b})"),
            Ty::Dist(t) => write!(f, "{t} dist"),
            Ty::Var(n) => write!(f, "'a{n}"),
        }
    }
}

/// A node's monomorphic signature.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSig {
    /// Input type.
    pub input: Ty,
    /// Output type.
    pub output: Ty,
}

/// Type-checks the program and elaborates overloaded integer literals in
/// place. Returns each node's (fully resolved) signature.
///
/// # Errors
///
/// Unification failures, unknown variables/nodes, and arity mismatches.
pub fn check_program(p: &mut Program) -> Result<HashMap<String, NodeSig>, LangError> {
    let mut ck = Checker::default();
    let mut sigs: HashMap<String, NodeSig> = HashMap::new();
    for node in &p.nodes {
        let sig = ck.check_node(node, &sigs)?;
        sigs.insert(node.name.clone(), sig);
    }
    for node in &mut p.nodes {
        ck.elaborate_expr(&mut node.body);
    }
    debug_assert!(ck.lit_cursor == ck.lit_vars.len(), "literal walk diverged");
    let sigs = sigs
        .into_iter()
        .map(|(name, sig)| {
            (
                name,
                NodeSig {
                    input: ck.canonical(&sig.input),
                    output: ck.canonical(&sig.output),
                },
            )
        })
        .collect();
    Ok(sigs)
}

#[derive(Default)]
struct Checker {
    subst: Vec<Option<Ty>>,
    numeric: Vec<bool>,
    lit_vars: Vec<u32>,
    lit_cursor: usize,
    /// Position of the nearest enclosing span annotation, so unification
    /// failures deep inside `unify`/`bind` can still point at source.
    cur_pos: Option<Pos>,
}

impl Checker {
    fn fresh(&mut self) -> Ty {
        self.subst.push(None);
        self.numeric.push(false);
        Ty::Var(self.subst.len() as u32 - 1)
    }

    fn fresh_numeric(&mut self) -> Ty {
        let t = self.fresh();
        if let Ty::Var(n) = t {
            self.numeric[n as usize] = true;
        }
        t
    }

    fn resolve(&self, t: &Ty) -> Ty {
        match t {
            Ty::Var(n) => match &self.subst[*n as usize] {
                Some(bound) => self.resolve(bound),
                None => t.clone(),
            },
            other => other.clone(),
        }
    }

    /// Fully resolves a type, defaulting leftover numeric variables to
    /// `float` (used for reporting and elaboration).
    fn canonical(&self, t: &Ty) -> Ty {
        match self.resolve(t) {
            Ty::Pair(a, b) => Ty::Pair(Box::new(self.canonical(&a)), Box::new(self.canonical(&b))),
            Ty::Dist(t) => Ty::Dist(Box::new(self.canonical(&t))),
            Ty::Var(n) if self.numeric[n as usize] => Ty::Float,
            other => other,
        }
    }

    fn occurs(&self, var: u32, t: &Ty) -> bool {
        match self.resolve(t) {
            Ty::Var(n) => n == var,
            Ty::Pair(a, b) => self.occurs(var, &a) || self.occurs(var, &b),
            Ty::Dist(t) => self.occurs(var, &t),
            _ => false,
        }
    }

    fn bind(&mut self, var: u32, t: Ty) -> Result<(), LangError> {
        if let Ty::Var(n) = &t {
            if *n == var {
                return Ok(());
            }
            // Propagate the numeric constraint.
            if self.numeric[var as usize] {
                self.numeric[*n as usize] = true;
            }
        } else if self.numeric[var as usize] && !matches!(t, Ty::Float | Ty::Int) {
            return Err(LangError::new(
                Stage::Type,
                format!("numeric literal used at non-numeric type {t}"),
            )
            .with_code(Code::TYPE_MISMATCH)
            .with_pos(self.cur_pos));
        }
        if self.occurs(var, &t) {
            return Err(
                LangError::new(Stage::Type, "recursive type (occurs check failed)")
                    .with_code(Code::TYPE_RECURSIVE)
                    .with_pos(self.cur_pos),
            );
        }
        self.subst[var as usize] = Some(t);
        Ok(())
    }

    fn unify(&mut self, a: &Ty, b: &Ty) -> Result<(), LangError> {
        let (a, b) = (self.resolve(a), self.resolve(b));
        match (a, b) {
            (Ty::Var(n), t) | (t, Ty::Var(n)) => self.bind(n, t),
            (Ty::Float, Ty::Float)
            | (Ty::Int, Ty::Int)
            | (Ty::Bool, Ty::Bool)
            | (Ty::Unit, Ty::Unit) => Ok(()),
            (Ty::Pair(a1, a2), Ty::Pair(b1, b2)) => {
                self.unify(&a1, &b1)?;
                self.unify(&a2, &b2)
            }
            (Ty::Dist(a), Ty::Dist(b)) => self.unify(&a, &b),
            (a, b) => Err(LangError::new(
                Stage::Type,
                format!(
                    "type mismatch: {} vs {}",
                    self.canonical(&a),
                    self.canonical(&b)
                ),
            )
            .with_code(Code::TYPE_MISMATCH)
            .with_pos(self.cur_pos)),
        }
    }

    fn check_node(
        &mut self,
        node: &NodeDecl,
        sigs: &HashMap<String, NodeSig>,
    ) -> Result<NodeSig, LangError> {
        let mut vars = HashMap::new();
        let input = self.bind_pattern(&node.param, &mut vars);
        let output = self.infer_expr(&node.body, &mut vars, sigs)?;
        Ok(NodeSig { input, output })
    }

    fn bind_pattern(&mut self, p: &Pattern, vars: &mut HashMap<String, Ty>) -> Ty {
        match p {
            Pattern::Var(x) => {
                let t = self.fresh();
                vars.insert(x.clone(), t.clone());
                t
            }
            Pattern::Unit => Ty::Unit,
            Pattern::Pair(a, b) => {
                let ta = self.bind_pattern(a, vars);
                let tb = self.bind_pattern(b, vars);
                Ty::Pair(Box::new(ta), Box::new(tb))
            }
        }
    }

    fn const_ty(&mut self, c: &Const) -> Ty {
        match c {
            Const::Unit => Ty::Unit,
            Const::Bool(_) => Ty::Bool,
            Const::Int(_) => {
                let t = self.fresh_numeric();
                if let Ty::Var(n) = t {
                    self.lit_vars.push(n);
                }
                t
            }
            Const::Float(_) => Ty::Float,
            Const::Nil => self.fresh(),
        }
    }

    fn infer_expr(
        &mut self,
        e: &Expr,
        vars: &mut HashMap<String, Ty>,
        sigs: &HashMap<String, NodeSig>,
    ) -> Result<Ty, LangError> {
        match e {
            Expr::At(inner, p) => {
                let saved = self.cur_pos;
                self.cur_pos = Some(*p);
                let r = self.infer_expr(inner, vars, sigs);
                self.cur_pos = saved;
                r
            }
            Expr::Const(c) => Ok(self.const_ty(c)),
            Expr::Var(x) => vars.get(x).cloned().ok_or_else(|| {
                LangError::new(Stage::Type, format!("unbound variable `{x}`"))
                    .with_code(Code::TYPE_UNBOUND)
                    .with_pos(self.cur_pos)
            }),
            Expr::Last(x) => vars.get(x).cloned().ok_or_else(|| {
                LangError::new(Stage::Type, format!("`last {x}` of unbound variable"))
                    .with_code(Code::TYPE_UNBOUND)
                    .with_pos(self.cur_pos)
            }),
            Expr::Pair(a, b) => {
                let ta = self.infer_expr(a, vars, sigs)?;
                let tb = self.infer_expr(b, vars, sigs)?;
                Ok(Ty::Pair(Box::new(ta), Box::new(tb)))
            }
            Expr::Op(op, args) => {
                let arg_tys: Vec<Ty> = args
                    .iter()
                    .map(|a| self.infer_expr(a, vars, sigs))
                    .collect::<Result<_, _>>()?;
                self.op_result(*op, &arg_tys)
            }
            Expr::App(f, arg) => {
                let targ = self.infer_expr(arg, vars, sigs)?;
                let sig = sigs.get(f.as_str()).ok_or_else(|| {
                    LangError::new(Stage::Type, format!("unknown node `{f}`"))
                        .with_code(Code::TYPE_UNKNOWN_NODE)
                        .with_pos(self.cur_pos)
                })?;
                let sig = sig.clone();
                self.unify(&targ, &sig.input)?;
                Ok(sig.output)
            }
            Expr::Where { body, eqs } => {
                let mut inner = vars.clone();
                // All equation names are in scope throughout (mutual
                // recursion through `last`).
                for eq in eqs {
                    if matches!(eq, Eq::Automaton { .. }) {
                        return Err(LangError::new(
                            Stage::Type,
                            "automaton must be expanded before type checking",
                        ));
                    }
                    inner
                        .entry(eq.name().to_string())
                        .or_insert_with(|| self.fresh());
                }
                for eq in eqs {
                    match eq {
                        Eq::Init { name, value } => {
                            let tv = self.const_ty(value);
                            let tx = inner[name.as_str()].clone();
                            self.unify(&tx, &tv)?;
                        }
                        Eq::Def { name, expr } => {
                            let te = self.infer_expr(expr, &mut inner, sigs)?;
                            let tx = inner[name.as_str()].clone();
                            // Point definition/use mismatches at the equation.
                            let saved = self.cur_pos;
                            self.cur_pos = expr.span().or(saved);
                            let r = self.unify(&tx, &te);
                            self.cur_pos = saved;
                            r?;
                        }
                        Eq::Automaton { .. } => unreachable!("checked above"),
                    }
                }
                self.infer_expr(body, &mut inner, sigs)
            }
            Expr::Present { cond, then, els } | Expr::If { cond, then, els } => {
                let tc = self.infer_expr(cond, vars, sigs)?;
                self.unify(&tc, &Ty::Bool)?;
                let tt = self.infer_expr(then, vars, sigs)?;
                let te = self.infer_expr(els, vars, sigs)?;
                self.unify(&tt, &te)?;
                Ok(tt)
            }
            Expr::Reset { body, every } => {
                let tb = self.infer_expr(body, vars, sigs)?;
                let te = self.infer_expr(every, vars, sigs)?;
                self.unify(&te, &Ty::Bool)?;
                Ok(tb)
            }
            Expr::Sample(d) => {
                let td = self.infer_expr(d, vars, sigs)?;
                let t = self.fresh();
                self.unify(&td, &Ty::Dist(Box::new(t.clone())))?;
                Ok(t)
            }
            Expr::Observe(d, v) => {
                let td = self.infer_expr(d, vars, sigs)?;
                let tv = self.infer_expr(v, vars, sigs)?;
                self.unify(&td, &Ty::Dist(Box::new(tv)))?;
                Ok(Ty::Unit)
            }
            Expr::Factor(w) => {
                let tw = self.infer_expr(w, vars, sigs)?;
                self.unify(&tw, &Ty::Float)?;
                Ok(Ty::Unit)
            }
            Expr::ValueOp(x) => self.infer_expr(x, vars, sigs),
            Expr::Infer { node, arg, .. } => {
                let targ = self.infer_expr(arg, vars, sigs)?;
                let sig = sigs.get(node.as_str()).ok_or_else(|| {
                    LangError::new(Stage::Type, format!("unknown node `{node}` in `infer`"))
                        .with_code(Code::TYPE_UNKNOWN_NODE)
                        .with_pos(self.cur_pos)
                })?;
                let sig = sig.clone();
                self.unify(&targ, &sig.input)?;
                Ok(Ty::Dist(Box::new(sig.output)))
            }
            Expr::Arrow(a, b) | Expr::Fby(a, b) => {
                let ta = self.infer_expr(a, vars, sigs)?;
                let tb = self.infer_expr(b, vars, sigs)?;
                self.unify(&ta, &tb)?;
                Ok(ta)
            }
            Expr::Pre(x) => self.infer_expr(x, vars, sigs),
        }
    }

    fn op_result(&mut self, op: OpName, args: &[Ty]) -> Result<Ty, LangError> {
        use OpName::*;
        let expect = |ck: &mut Self, t: &Ty, want: &Ty| ck.unify(t, want);
        match op {
            Add | Sub | Mul | Div | Min | Max => {
                let t = self.fresh_numeric();
                expect(self, &args[0], &t)?;
                expect(self, &args[1], &t)?;
                Ok(t)
            }
            Neg => {
                let t = self.fresh_numeric();
                expect(self, &args[0], &t)?;
                Ok(t)
            }
            Lt | Le | Gt | Ge => {
                let t = self.fresh_numeric();
                expect(self, &args[0], &t)?;
                expect(self, &args[1], &t)?;
                Ok(Ty::Bool)
            }
            Eq | Ne => {
                let t = self.fresh();
                expect(self, &args[0], &t)?;
                expect(self, &args[1], &t)?;
                Ok(Ty::Bool)
            }
            And | Or => {
                expect(self, &args[0], &Ty::Bool)?;
                expect(self, &args[1], &Ty::Bool)?;
                Ok(Ty::Bool)
            }
            Not => {
                expect(self, &args[0], &Ty::Bool)?;
                Ok(Ty::Bool)
            }
            Fst => {
                let a = self.fresh();
                let b = self.fresh();
                expect(self, &args[0], &Ty::Pair(Box::new(a.clone()), Box::new(b)))?;
                Ok(a)
            }
            Snd => {
                let a = self.fresh();
                let b = self.fresh();
                expect(self, &args[0], &Ty::Pair(Box::new(a), Box::new(b.clone())))?;
                Ok(b)
            }
            Exp | Log | Sqrt | Abs => {
                expect(self, &args[0], &Ty::Float)?;
                Ok(Ty::Float)
            }
            FloatOfInt => {
                expect(self, &args[0], &Ty::Int)?;
                Ok(Ty::Float)
            }
            MeanFloat | VarianceFloat => {
                let t = self.fresh();
                expect(self, &args[0], &Ty::Dist(Box::new(t)))?;
                Ok(Ty::Float)
            }
            Prob => {
                let t = self.fresh();
                expect(self, &args[0], &Ty::Dist(Box::new(t)))?;
                expect(self, &args[1], &Ty::Float)?;
                expect(self, &args[2], &Ty::Float)?;
                Ok(Ty::Float)
            }
            DrawDist => {
                let t = self.fresh();
                expect(self, &args[0], &Ty::Dist(Box::new(t.clone())))?;
                Ok(t)
            }
            Gaussian | Beta | Uniform | Gamma => {
                expect(self, &args[0], &Ty::Float)?;
                expect(self, &args[1], &Ty::Float)?;
                Ok(Ty::Dist(Box::new(Ty::Float)))
            }
            Bernoulli => {
                expect(self, &args[0], &Ty::Float)?;
                Ok(Ty::Dist(Box::new(Ty::Bool)))
            }
            Poisson => {
                expect(self, &args[0], &Ty::Float)?;
                Ok(Ty::Dist(Box::new(Ty::Int)))
            }
            Exponential => {
                expect(self, &args[0], &Ty::Float)?;
                Ok(Ty::Dist(Box::new(Ty::Float)))
            }
            Binomial => {
                expect(self, &args[0], &Ty::Int)?;
                expect(self, &args[1], &Ty::Float)?;
                Ok(Ty::Dist(Box::new(Ty::Int)))
            }
            Dirac => {
                let t = args[0].clone();
                Ok(Ty::Dist(Box::new(t)))
            }
        }
    }

    // ---- literal elaboration (same traversal order as inference) -------

    fn elaborate_const(&mut self, c: &mut Const) {
        if let Const::Int(n) = c {
            let var = self.lit_vars[self.lit_cursor];
            self.lit_cursor += 1;
            if matches!(self.canonical(&Ty::Var(var)), Ty::Float) {
                *c = Const::Float(*n as f64);
            }
        }
    }

    fn elaborate_expr(&mut self, e: &mut Expr) {
        match e {
            Expr::At(inner, _) => self.elaborate_expr(inner),
            Expr::Const(c) => self.elaborate_const(c),
            Expr::Var(_) | Expr::Last(_) => {}
            Expr::Pair(a, b) => {
                self.elaborate_expr(a);
                self.elaborate_expr(b);
            }
            Expr::Op(_, args) => {
                for a in args {
                    self.elaborate_expr(a);
                }
            }
            Expr::App(_, arg) => self.elaborate_expr(arg),
            Expr::Where { body, eqs } => {
                for eq in eqs.iter_mut() {
                    match eq {
                        Eq::Init { value, .. } => self.elaborate_const(value),
                        Eq::Def { expr, .. } => self.elaborate_expr(expr),
                        Eq::Automaton { .. } => {}
                    }
                }
                self.elaborate_expr(body);
            }
            Expr::Present { cond, then, els } | Expr::If { cond, then, els } => {
                self.elaborate_expr(cond);
                self.elaborate_expr(then);
                self.elaborate_expr(els);
            }
            Expr::Reset { body, every } => {
                self.elaborate_expr(body);
                self.elaborate_expr(every);
            }
            Expr::Sample(d) => self.elaborate_expr(d),
            Expr::Observe(d, v) => {
                self.elaborate_expr(d);
                self.elaborate_expr(v);
            }
            Expr::Factor(w) => self.elaborate_expr(w),
            Expr::ValueOp(x) => self.elaborate_expr(x),
            Expr::Infer { arg, .. } => self.elaborate_expr(arg),
            Expr::Arrow(a, b) | Expr::Fby(a, b) => {
                self.elaborate_expr(a);
                self.elaborate_expr(b);
            }
            Expr::Pre(x) => self.elaborate_expr(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<(Program, HashMap<String, NodeSig>), LangError> {
        let mut p = parse_program(src).unwrap();
        let sigs = check_program(&mut p)?;
        Ok((p, sigs))
    }

    #[test]
    fn hmm_has_float_to_float_signature() {
        let (_, sigs) = check(
            r#"
            let node hmm y = x where
              rec x = sample (gaussian (0. -> pre x, 1.))
              and () = observe (gaussian (x, 1.), y)
            "#,
        )
        .unwrap();
        let sig = &sigs["hmm"];
        assert_eq!(sig.input, Ty::Float);
        assert_eq!(sig.output, Ty::Float);
    }

    #[test]
    fn infer_returns_dist() {
        let (_, sigs) = check(
            r#"
            let node m y = sample (gaussian (y, 1.))
            let node main y = infer 10 m y
            "#,
        )
        .unwrap();
        assert_eq!(sigs["main"].output, Ty::Dist(Box::new(Ty::Float)));
    }

    #[test]
    fn int_literals_elaborate_to_float_in_float_context() {
        let (p, _) =
            check("let node f x = x + 0 where rec init unused = 1.0 and unused = 2.").unwrap();
        // Ambiguous numeric: defaults to float.
        let src = crate::pretty::print_program(&p);
        assert!(src.contains("0.0"), "elaborated: {src}");
    }

    #[test]
    fn int_literals_stay_int_when_constrained() {
        let (p, sigs) = check("let node f n = binomial(n, 0.5)").unwrap();
        assert_eq!(sigs["f"].input, Ty::Int);
        assert_eq!(sigs["f"].output, Ty::Dist(Box::new(Ty::Int)));
        let _ = p;
    }

    #[test]
    fn observing_wrong_type_fails() {
        let err = check("let node f y = observe(bernoulli(0.5), 1.0)").unwrap_err();
        assert_eq!(err.stage, Stage::Type);
    }

    #[test]
    fn branches_must_agree() {
        let err = check("let node f c = if c then 1. else false").unwrap_err();
        assert_eq!(err.stage, Stage::Type);
    }

    #[test]
    fn condition_must_be_bool() {
        let err = check("let node f x = if x + 1. then 1. else 2.").unwrap_err();
        assert_eq!(err.stage, Stage::Type);
    }

    #[test]
    fn unbound_variable_reported() {
        let err = check("let node f x = y").unwrap_err();
        assert!(err.message.contains("unbound"));
    }

    #[test]
    fn pairs_and_projections() {
        let (_, sigs) = check("let node f p = fst(p) + 1.").unwrap();
        match &sigs["f"].input {
            Ty::Pair(a, _) => assert_eq!(**a, Ty::Float),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn node_application_types_flow() {
        let (_, sigs) = check(
            r#"
            let node double x = x + x
            let node f y = double(y) > 1.
            "#,
        )
        .unwrap();
        assert_eq!(sigs["f"].input, Ty::Float);
        assert_eq!(sigs["f"].output, Ty::Bool);
    }

    #[test]
    fn arrow_operands_must_match() {
        let err = check("let node f x = true -> 1.").unwrap_err();
        assert_eq!(err.stage, Stage::Type);
    }

    #[test]
    fn the_paper_loose_int_literal_hmm_checks() {
        // The paper writes `gaussian (0 -> pre x, speed)` with an int 0.
        let (p, sigs) = check(
            r#"
            let node hmm y = x where
              rec x = sample (gaussian (0 -> pre x, 1.))
              and () = observe (gaussian (x, 1.), y)
            "#,
        )
        .unwrap();
        assert_eq!(sigs["hmm"].output, Ty::Float);
        let src = crate::pretty::print_program(&p);
        assert!(src.contains("0.0"), "elaborated: {src}");
    }
}
