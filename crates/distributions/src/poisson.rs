//! Poisson distribution.

use crate::special::ln_factorial;
use crate::traits::{Distribution, Moments, ParamError};
use rand::Rng;

/// Poisson distribution with mean `lambda`, over non-negative counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates `Poisson(lambda)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `lambda` is strictly positive and
    /// finite.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(ParamError::new(format!(
                "poisson rate must be positive and finite, got {lambda}"
            )));
        }
        Ok(Poisson { lambda })
    }

    /// Rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Distribution for Poisson {
    type Item = u64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            // Knuth's multiplicative method.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0f64;
            loop {
                p *= rng.gen_range(0.0f64..1.0);
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Split recursively: Poisson(a + b) = Poisson(a) + Poisson(b).
            let half = Poisson {
                lambda: self.lambda / 2.0,
            };
            half.sample(rng) + half.sample(rng)
        }
    }

    fn log_pdf(&self, k: &u64) -> f64 {
        *k as f64 * self.lambda.ln() - self.lambda - ln_factorial(*k)
    }
}

impl Moments for Poisson {
    fn mean(&self) -> f64 {
        self.lambda
    }

    fn variance(&self) -> f64 {
        self.lambda
    }
}

impl std::fmt::Display for Poisson {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Poisson({})", self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(3.5).is_ok());
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = Poisson::new(4.0).unwrap();
        let total: f64 = (0..100).map(|k| d.pdf(&k)).sum();
        assert!((total - 1.0).abs() < 1e-10, "sum {total}");
    }

    #[test]
    fn pmf_known_value() {
        // P(X = 0 | lambda) = e^{-lambda}
        let d = Poisson::new(2.0).unwrap();
        assert!((d.log_pdf(&0) - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn sample_moments_small_lambda() {
        let d = Poisson::new(3.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(17);
        let n = 100_000;
        let s: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let m = s as f64 / n as f64;
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn sample_moments_large_lambda() {
        let d = Poisson::new(120.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(18);
        let n = 20_000;
        let s: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let m = s as f64 / n as f64;
        assert!((m - 120.0).abs() < 0.5, "mean {m}");
    }
}
