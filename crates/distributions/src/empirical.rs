//! Weighted empirical (categorical) distributions over arbitrary values.
//!
//! The result of a particle-filter `infer` step is exactly such a
//! distribution: a finite weighted set of outputs.

use crate::traits::{Distribution, ParamError};
use rand::Rng;

/// A normalized, weighted, finite support distribution over values of type
/// `T` — the categorical distribution the paper's `infer` builds from
/// particle (value, weight) pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical<T> {
    items: Vec<(T, f64)>,
}

impl<T> Empirical<T> {
    /// Builds a normalized empirical distribution from weighted items.
    ///
    /// Non-finite or negative weights are rejected; if every weight is zero
    /// (all particles died), the distribution falls back to uniform, which
    /// mirrors the behaviour of a particle filter after total weight
    /// collapse.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `items` is empty or any weight is negative
    /// or non-finite.
    pub fn new(items: Vec<(T, f64)>) -> Result<Self, ParamError> {
        if items.is_empty() {
            return Err(ParamError::new(
                "empirical distribution needs at least one item",
            ));
        }
        if items.iter().any(|(_, w)| !w.is_finite() || *w < 0.0) {
            return Err(ParamError::new(
                "empirical weights must be finite and non-negative",
            ));
        }
        let total: f64 = items.iter().map(|(_, w)| w).sum();
        let items = if total > 0.0 {
            items.into_iter().map(|(v, w)| (v, w / total)).collect()
        } else {
            let n = items.len() as f64;
            items.into_iter().map(|(v, _)| (v, 1.0 / n)).collect()
        };
        Ok(Empirical { items })
    }

    /// Builds a uniform empirical distribution over the given values.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `values` is empty.
    pub fn uniform(values: Vec<T>) -> Result<Self, ParamError> {
        let n = values.len() as f64;
        Self::new(values.into_iter().map(|v| (v, 1.0 / n)).collect())
    }

    /// The normalized `(value, weight)` pairs.
    pub fn items(&self) -> &[(T, f64)] {
        &self.items
    }

    /// Number of support points (with multiplicity).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the support is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maps the support values, keeping weights.
    pub fn map<U>(self, f: impl FnMut(T) -> U) -> Empirical<U> {
        let mut f = f;
        Empirical {
            items: self.items.into_iter().map(|(v, w)| (f(v), w)).collect(),
        }
    }

    /// Expected value of `f` under the distribution.
    pub fn expect(&self, mut f: impl FnMut(&T) -> f64) -> f64 {
        self.items.iter().map(|(v, w)| w * f(v)).sum()
    }
}

impl Empirical<f64> {
    /// Weighted mean of a float-valued empirical distribution.
    pub fn mean(&self) -> f64 {
        self.expect(|&x| x)
    }

    /// Weighted variance.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.expect(|&x| (x - m) * (x - m))
    }

    /// Probability mass in the closed interval `[lo, hi]`.
    pub fn prob_interval(&self, lo: f64, hi: f64) -> f64 {
        self.items
            .iter()
            .filter(|(v, _)| *v >= lo && *v <= hi)
            .map(|(_, w)| w)
            .sum()
    }
}

impl<T: Clone> Distribution for Empirical<T> {
    type Item = T;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        let u: f64 = rng.gen_range(0.0f64..1.0);
        let mut acc = 0.0;
        for (v, w) in &self.items {
            acc += w;
            if u < acc {
                return v.clone();
            }
        }
        // Numerical slack: return the last item.
        self.items.last().expect("non-empty support").0.clone()
    }

    fn log_pdf(&self, _x: &T) -> f64 {
        // Mass queries on arbitrary T require equality; use `mass_of` when
        // T: PartialEq. A generic log_pdf would need a base measure, which
        // an empirical mixture of Dirac deltas does not have w.r.t.
        // Lebesgue, so we deliberately do not define it.
        unimplemented!("use Empirical::mass_of for probability-mass queries")
    }
}

impl<T: PartialEq> Empirical<T> {
    /// Total probability mass assigned to values equal to `x`.
    pub fn mass_of(&self, x: &T) -> f64 {
        self.items
            .iter()
            .filter(|(v, _)| v == x)
            .map(|(_, w)| w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes_weights() {
        let d = Empirical::new(vec![(1.0, 2.0), (2.0, 6.0)]).unwrap();
        assert!((d.items()[0].1 - 0.25).abs() < 1e-12);
        assert!((d.items()[1].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let d = Empirical::new(vec![("a", 0.0), ("b", 0.0)]).unwrap();
        assert!((d.mass_of(&"a") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty_and_bad_weights() {
        assert!(Empirical::<f64>::new(vec![]).is_err());
        assert!(Empirical::new(vec![(1.0, -1.0)]).is_err());
        assert!(Empirical::new(vec![(1.0, f64::NAN)]).is_err());
    }

    #[test]
    fn mean_and_variance() {
        let d = Empirical::new(vec![(0.0, 1.0), (4.0, 1.0)]).unwrap();
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert!((d.variance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn prob_interval_counts_mass() {
        let d = Empirical::new(vec![(0.0, 1.0), (1.0, 1.0), (2.0, 2.0)]).unwrap();
        assert!((d.prob_interval(0.5, 2.5) - 0.75).abs() < 1e-12);
        assert!((d.prob_interval(-1.0, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_weights() {
        let d = Empirical::new(vec![(0u8, 1.0), (1u8, 3.0)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 100_000;
        let ones = (0..n).filter(|_| d.sample(&mut rng) == 1).count();
        let f = ones as f64 / n as f64;
        assert!((f - 0.75).abs() < 0.01, "frequency {f}");
    }

    #[test]
    fn map_preserves_weights() {
        let d = Empirical::new(vec![(1, 1.0), (2, 3.0)]).unwrap();
        let d2 = d.map(|x| x * 10);
        assert!((d2.mass_of(&20) - 0.75).abs() < 1e-12);
    }
}
