//! Fault-injection wrappers for chaos testing (feature `chaos`).
//!
//! [`FaultyDist`] decorates any [`Distribution`] with a deterministic fault
//! schedule keyed on the *call number* of `sample`/`log_pdf`: the wrapper
//! counts invocations and, when the counter hits a scheduled call, corrupts
//! the result (NaN density, `-inf` density) or panics outright. Because the
//! schedule is data-driven rather than time- or RNG-driven, chaos runs stay
//! bit-reproducible across thread counts — the supervisor tests rely on
//! that.
//!
//! The wrapper is test infrastructure, not a modelling tool: it exists so
//! every recovery path of the inference supervisor can be exercised in CI
//! without hand-crafting a numerically degenerate model.

use crate::traits::{Distribution, Moments};
use rand::Rng;
use std::cell::Cell;

/// What a [`FaultyDist`] does when a scheduled call number is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistFault {
    /// `log_pdf` returns `f64::NAN` (a non-finite weight fault).
    NanDensity,
    /// `log_pdf` returns `f64::NEG_INFINITY` (a zero-density observation).
    ZeroDensity,
    /// `sample`/`log_pdf` panics (a crashing particle).
    Panic,
}

/// A [`Distribution`] decorator that injects faults at scheduled calls.
///
/// Calls to [`Distribution::sample`] and [`Distribution::log_pdf`] share one
/// counter, incremented on every invocation. When the counter (0-based)
/// matches a scheduled entry, the fault fires instead of the real result.
///
/// # Examples
///
/// ```
/// use probzelus_distributions::chaos::{DistFault, FaultyDist};
/// use probzelus_distributions::{Distribution, Gaussian};
///
/// let inner = Gaussian::new(0.0, 1.0).unwrap();
/// let faulty = FaultyDist::new(inner, vec![(1, DistFault::ZeroDensity)]);
/// assert!(faulty.log_pdf(&0.0).is_finite()); // call 0: passthrough
/// assert_eq!(faulty.log_pdf(&0.0), f64::NEG_INFINITY); // call 1: fault
/// assert!(faulty.log_pdf(&0.0).is_finite()); // call 2: passthrough
/// ```
#[derive(Debug, Clone)]
pub struct FaultyDist<D> {
    inner: D,
    /// `(call_number, fault)` pairs; call numbers are 0-based.
    schedule: Vec<(u64, DistFault)>,
    calls: Cell<u64>,
}

impl<D> FaultyDist<D> {
    /// Wraps `inner` with a fault `schedule` of `(call_number, fault)`
    /// pairs (0-based, matched against a shared sample/log_pdf counter).
    pub fn new(inner: D, schedule: Vec<(u64, DistFault)>) -> Self {
        FaultyDist {
            inner,
            schedule,
            calls: Cell::new(0),
        }
    }

    /// The wrapped distribution.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// How many `sample`/`log_pdf` calls have been made so far.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// Advances the call counter and returns the fault scheduled for the
    /// call that just happened, if any.
    fn tick(&self) -> Option<DistFault> {
        let n = self.calls.get();
        self.calls.set(n + 1);
        self.schedule
            .iter()
            .find(|(at, _)| *at == n)
            .map(|(_, f)| *f)
    }
}

impl<D: Distribution> Distribution for FaultyDist<D> {
    type Item = D::Item;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> D::Item {
        match self.tick() {
            Some(DistFault::Panic) => panic!("chaos: injected sample panic"),
            // Density faults cannot corrupt a sample; fall through so the
            // sampled value stays identical to the fault-free run.
            _ => self.inner.sample(rng),
        }
    }

    fn log_pdf(&self, x: &D::Item) -> f64 {
        match self.tick() {
            Some(DistFault::Panic) => panic!("chaos: injected log_pdf panic"),
            Some(DistFault::NanDensity) => f64::NAN,
            Some(DistFault::ZeroDensity) => f64::NEG_INFINITY,
            None => self.inner.log_pdf(x),
        }
    }
}

impl<D: Moments> Moments for FaultyDist<D> {
    fn mean(&self) -> f64 {
        self.inner.mean()
    }

    fn variance(&self) -> f64 {
        self.inner.variance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gaussian;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn unit() -> Gaussian {
        Gaussian::new(0.0, 1.0).unwrap()
    }

    #[test]
    fn passthrough_matches_inner() {
        let faulty = FaultyDist::new(unit(), vec![]);
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        assert_eq!(faulty.sample(&mut a), unit().sample(&mut b));
        assert_eq!(faulty.log_pdf(&0.3), unit().log_pdf(&0.3));
        assert_eq!(faulty.calls(), 2);
    }

    #[test]
    fn scheduled_faults_fire_once_at_their_call() {
        let faulty = FaultyDist::new(
            unit(),
            vec![(1, DistFault::NanDensity), (2, DistFault::ZeroDensity)],
        );
        assert!(faulty.log_pdf(&0.0).is_finite());
        assert!(faulty.log_pdf(&0.0).is_nan());
        assert_eq!(faulty.log_pdf(&0.0), f64::NEG_INFINITY);
        assert!(faulty.log_pdf(&0.0).is_finite());
    }

    #[test]
    fn panic_fault_panics() {
        let faulty = FaultyDist::new(unit(), vec![(0, DistFault::Panic)]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| faulty.log_pdf(&0.0)));
        assert!(r.is_err());
    }

    #[test]
    fn density_fault_leaves_samples_untouched() {
        let faulty = FaultyDist::new(unit(), vec![(0, DistFault::ZeroDensity)]);
        let mut a = SmallRng::seed_from_u64(4);
        let mut b = SmallRng::seed_from_u64(4);
        assert_eq!(faulty.sample(&mut a), unit().sample(&mut b));
    }
}
