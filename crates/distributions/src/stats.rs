//! Statistics utilities shared by the inference engines: weight
//! normalization, effective sample size, resampling, and summary statistics.

use crate::special::log_sum_exp;
use rand::Rng;

/// Why a weight vector carries no usable probability mass.
///
/// Returned by [`try_normalize_log_weights`] and
/// [`try_systematic_resample`] so callers (the inference supervisor in
/// particular) can distinguish a *collapsed* particle cloud from a healthy
/// one instead of silently receiving a uniformized fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightDegeneracy {
    /// Every log-weight is `-inf` (all particles have zero likelihood) —
    /// the "zero-density observation hit everyone" collapse.
    AllZero,
    /// At least one weight is `NaN` or `+inf`, so the normalization is
    /// undefined (e.g. a `factor(NaN)` or an overflowing score).
    NonFinite,
    /// The weight vector is empty.
    Empty,
}

impl std::fmt::Display for WeightDegeneracy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightDegeneracy::AllZero => f.write_str("all weights are zero (log-weights -inf)"),
            WeightDegeneracy::NonFinite => f.write_str("weights contain NaN or +inf"),
            WeightDegeneracy::Empty => f.write_str("empty weight vector"),
        }
    }
}

impl std::error::Error for WeightDegeneracy {}

/// Normalizes a slice of log-weights into linear-space probabilities,
/// reporting degeneracy as a typed error instead of papering over it.
///
/// Numerically stable (subtracts the max before exponentiating).
///
/// # Errors
///
/// [`WeightDegeneracy`] if the slice is empty, contains `NaN`/`+inf`, or
/// carries zero total mass (all `-inf`).
pub fn try_normalize_log_weights(log_weights: &[f64]) -> Result<Vec<f64>, WeightDegeneracy> {
    let mut out = Vec::with_capacity(log_weights.len());
    try_normalize_log_weights_into(log_weights, &mut out)?;
    Ok(out)
}

/// Buffer-reusing variant of [`try_normalize_log_weights`]: writes the
/// normalized probabilities into `out` (cleared first) instead of
/// allocating a fresh vector. The steady-state inference hot loop calls
/// this every tick with a persistent scratch buffer so normalization is
/// allocation-free once the buffer has warmed up.
///
/// Returns the log-normalizer `logsumexp(log_weights)` — callers that
/// need the log-evidence increment (`z - ln n`) get it for free instead
/// of re-scanning the weights.
///
/// On error `out` is left empty. Produces bit-identical values to the
/// allocating variant.
///
/// # Errors
///
/// [`WeightDegeneracy`] if the slice is empty, contains `NaN`/`+inf`, or
/// carries zero total mass (all `-inf`).
pub fn try_normalize_log_weights_into(
    log_weights: &[f64],
    out: &mut Vec<f64>,
) -> Result<f64, WeightDegeneracy> {
    out.clear();
    if log_weights.is_empty() {
        return Err(WeightDegeneracy::Empty);
    }
    if log_weights
        .iter()
        .any(|w| w.is_nan() || *w == f64::INFINITY)
    {
        return Err(WeightDegeneracy::NonFinite);
    }
    let z = log_sum_exp(log_weights);
    if !z.is_finite() {
        return Err(WeightDegeneracy::AllZero);
    }
    out.extend(log_weights.iter().map(|&lw| (lw - z).exp()));
    Ok(z)
}

/// Normalizes a slice of log-weights into linear-space probabilities.
///
/// Numerically stable (subtracts the max before exponentiating). If the
/// weights are degenerate (all `-inf`, or any `NaN`/`+inf`), returns the
/// uniform distribution. Callers that need to *react* to degeneracy (the
/// fault-tolerant supervisor does) should use
/// [`try_normalize_log_weights`] instead.
pub fn normalize_log_weights(log_weights: &[f64]) -> Vec<f64> {
    try_normalize_log_weights(log_weights).unwrap_or_else(|_| {
        let n = log_weights.len().max(1) as f64;
        vec![1.0 / n; log_weights.len()]
    })
}

/// Effective sample size `1 / Σ w_i²` of normalized weights.
///
/// Equal weights give `n`; a single surviving particle gives `1`.
pub fn effective_sample_size(weights: &[f64]) -> f64 {
    let s: f64 = weights.iter().map(|w| w * w).sum();
    if s > 0.0 {
        1.0 / s
    } else {
        0.0
    }
}

/// Systematic resampling with typed degeneracy reporting: draws `n`
/// ancestor indices from the normalized `weights` using a single uniform
/// offset, the low-variance scheme standard in particle filtering.
///
/// # Errors
///
/// [`WeightDegeneracy`] if `weights` is empty, contains `NaN`/`±inf`, or
/// sums to zero — resampling from such a cloud would fabricate ancestry
/// out of nothing, which the supervisor must know about.
pub fn try_systematic_resample<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &[f64],
    n: usize,
) -> Result<Vec<usize>, WeightDegeneracy> {
    if weights.is_empty() {
        return Err(WeightDegeneracy::Empty);
    }
    if weights.iter().any(|w| !w.is_finite()) {
        return Err(WeightDegeneracy::NonFinite);
    }
    // Every weight is finite here, so the sum cannot be NaN.
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err(WeightDegeneracy::AllZero);
    }
    Ok(systematic_resample_normalized(
        rng,
        &weights.iter().map(|w| w / total).collect::<Vec<f64>>(),
        n,
    ))
}

/// Systematic resampling: draws `n` ancestor indices from the normalized
/// `weights` using a single uniform offset, the low-variance scheme standard
/// in particle filtering. Degenerate weights (zero total mass, `NaN`)
/// fall back to uniform ancestry; use [`try_systematic_resample`] to
/// detect that instead.
///
/// # Panics
///
/// Panics if `weights` is empty.
pub fn systematic_resample<R: Rng + ?Sized>(rng: &mut R, weights: &[f64], n: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    systematic_resample_into(rng, weights, n, &mut out);
    out
}

/// Buffer-reusing variant of [`systematic_resample`]: writes the `n`
/// ancestor indices into `out` (cleared first) instead of allocating.
/// Consumes exactly one RNG draw, like the allocating variant, and
/// produces bit-identical ancestry — the inference engine relies on that
/// equivalence for its determinism contract.
///
/// # Panics
///
/// Panics if `weights` is empty.
pub fn systematic_resample_into<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &[f64],
    n: usize,
    out: &mut Vec<usize>,
) {
    assert!(!weights.is_empty(), "cannot resample from empty weights");
    let healthy = weights.iter().all(|w| w.is_finite());
    // Every weight is finite here, so the sum cannot be NaN.
    let total: f64 = if healthy { weights.iter().sum() } else { 0.0 };
    if healthy && total > 0.0 {
        // Normalizing inside the accessor performs the same `w / total`
        // divisions, in the same order, as materializing a normalized
        // vector first — so the accumulated sweep is bit-identical.
        systematic_sweep_into(rng, |i| weights[i] / total, weights.len(), n, out);
    } else {
        let uniform = 1.0 / weights.len() as f64;
        systematic_sweep_into(rng, |_| uniform, weights.len(), n, out);
    }
}

/// The core systematic sweep over already-normalized weights.
fn systematic_resample_normalized<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &[f64],
    n: usize,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    systematic_sweep_into(rng, |i| weights[i], weights.len(), n, &mut out);
    out
}

/// Single-offset systematic sweep: one uniform draw, then `n` evenly
/// spaced pointers walked across the cumulative weights. `w(i)` must
/// yield the normalized weight of index `i` for `i < len`. The emitted
/// indices are nondecreasing, a property the clone-minimal resampler in
/// the core engine depends on.
fn systematic_sweep_into<R: Rng + ?Sized>(
    rng: &mut R,
    w: impl Fn(usize) -> f64,
    len: usize,
    n: usize,
    out: &mut Vec<usize>,
) {
    let step = 1.0 / n as f64;
    let mut u = rng.gen_range(0.0..step);
    out.clear();
    out.reserve(n);
    let mut acc = w(0);
    let mut i = 0usize;
    for _ in 0..n {
        while u > acc && i + 1 < len {
            i += 1;
            acc += w(i);
        }
        out.push(i);
        u += step;
    }
}

/// Weighted mean of `(value, weight)` pairs (weights need not be
/// normalized). Returns `0.0` for zero total weight.
pub fn weighted_mean(pairs: &[(f64, f64)]) -> f64 {
    let total: f64 = pairs.iter().map(|(_, w)| w).sum();
    if total <= 0.0 {
        return 0.0;
    }
    pairs.iter().map(|(v, w)| v * w).sum::<f64>() / total
}

/// Weighted variance around the weighted mean.
pub fn weighted_variance(pairs: &[(f64, f64)]) -> f64 {
    let total: f64 = pairs.iter().map(|(_, w)| w).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let m = weighted_mean(pairs);
    pairs
        .iter()
        .map(|(v, w)| w * (v - m) * (v - m))
        .sum::<f64>()
        / total
}

/// Empirical quantile (by sorting) of unweighted samples; `q` in `[0, 1]`.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0, 1]");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    let idx = ((v.len() - 1) as f64 * q).round() as usize;
    v[idx]
}

/// Median, `quantile(xs, 0.5)`.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normalize_log_weights_basic() {
        let w = normalize_log_weights(&[0.0, 0.0]);
        assert!((w[0] - 0.5).abs() < 1e-12);
        let w = normalize_log_weights(&[1000.0, 1000.0 - (3.0f64).ln()]);
        assert!((w[0] - 0.75).abs() < 1e-12);
        assert!((w[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn normalize_all_neg_inf_gives_uniform() {
        let w = normalize_log_weights(&[f64::NEG_INFINITY; 4]);
        assert!(w.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn try_normalize_reports_degeneracy_kinds() {
        assert_eq!(
            try_normalize_log_weights(&[f64::NEG_INFINITY; 3]),
            Err(WeightDegeneracy::AllZero)
        );
        assert_eq!(
            try_normalize_log_weights(&[0.0, f64::NAN]),
            Err(WeightDegeneracy::NonFinite)
        );
        assert_eq!(
            try_normalize_log_weights(&[0.0, f64::INFINITY]),
            Err(WeightDegeneracy::NonFinite)
        );
        assert_eq!(try_normalize_log_weights(&[]), Err(WeightDegeneracy::Empty));
        let ok = try_normalize_log_weights(&[0.0, 0.0]).unwrap();
        assert!((ok[0] - 0.5).abs() < 1e-12);
        // A single -inf among finite weights is NOT degenerate: that
        // particle simply has zero weight.
        let ok = try_normalize_log_weights(&[0.0, f64::NEG_INFINITY]).unwrap();
        assert!((ok[0] - 1.0).abs() < 1e-12);
        assert_eq!(ok[1], 0.0);
    }

    #[test]
    fn try_resample_reports_degeneracy_and_matches_untyped() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(
            try_systematic_resample(&mut rng, &[0.0, 0.0], 10),
            Err(WeightDegeneracy::AllZero)
        );
        assert_eq!(
            try_systematic_resample(&mut rng, &[f64::NAN, 1.0], 10),
            Err(WeightDegeneracy::NonFinite)
        );
        assert_eq!(
            try_systematic_resample(&mut rng, &[], 10),
            Err(WeightDegeneracy::Empty)
        );
        // The typed and untyped paths agree bit-for-bit on healthy input.
        let w = [0.1, 0.2, 0.3, 0.4];
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        assert_eq!(
            try_systematic_resample(&mut a, &w, 50).unwrap(),
            systematic_resample(&mut b, &w, 50)
        );
    }

    #[test]
    fn into_variants_match_allocating_bitwise() {
        let log_ws = [0.3, -1.7, 0.0, -0.4, 2.2];
        let alloc = try_normalize_log_weights(&log_ws).unwrap();
        let mut out = vec![9.0; 2]; // stale contents must be cleared
        try_normalize_log_weights_into(&log_ws, &mut out).unwrap();
        assert_eq!(
            alloc.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            out.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            try_normalize_log_weights_into(&[f64::NAN], &mut out),
            Err(WeightDegeneracy::NonFinite)
        );
        assert!(out.is_empty(), "error path leaves the buffer empty");

        for weights in [vec![0.1, 0.2, 0.3, 0.4], vec![0.0, 0.0, 0.0]] {
            let mut a = SmallRng::seed_from_u64(17);
            let mut b = SmallRng::seed_from_u64(17);
            let alloc = systematic_resample(&mut a, &weights, 64);
            let mut out = vec![99usize; 3];
            systematic_resample_into(&mut b, &weights, 64, &mut out);
            assert_eq!(alloc, out);
            assert!(out.windows(2).all(|w| w[0] <= w[1]), "nondecreasing");
        }
    }

    #[test]
    fn degeneracy_display() {
        assert_eq!(
            WeightDegeneracy::AllZero.to_string(),
            "all weights are zero (log-weights -inf)"
        );
        assert_eq!(
            WeightDegeneracy::NonFinite.to_string(),
            "weights contain NaN or +inf"
        );
        assert_eq!(WeightDegeneracy::Empty.to_string(), "empty weight vector");
    }

    #[test]
    fn ess_bounds() {
        assert!((effective_sample_size(&[0.25; 4]) - 4.0).abs() < 1e-12);
        assert!((effective_sample_size(&[1.0, 0.0, 0.0]) - 1.0).abs() < 1e-12);
        assert_eq!(effective_sample_size(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn systematic_resample_is_unbiased_in_expectation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let weights = [0.1, 0.2, 0.3, 0.4];
        let mut counts = [0usize; 4];
        let trials = 2_000;
        let n = 100;
        for _ in 0..trials {
            for idx in systematic_resample(&mut rng, &weights, n) {
                counts[idx] += 1;
            }
        }
        let total = (trials * n) as f64;
        for (i, &w) in weights.iter().enumerate() {
            let f = counts[i] as f64 / total;
            assert!((f - w).abs() < 0.01, "index {i}: {f} vs {w}");
        }
    }

    #[test]
    fn systematic_resample_handles_degenerate_weights() {
        let mut rng = SmallRng::seed_from_u64(4);
        let idx = systematic_resample(&mut rng, &[0.0, 0.0, 0.0], 30);
        assert_eq!(idx.len(), 30);
        // Uniform fallback touches every index with high probability.
        assert!(idx.contains(&0));
        assert!(idx.contains(&2));
    }

    #[test]
    fn weighted_stats() {
        let pairs = [(0.0, 1.0), (4.0, 3.0)];
        assert!((weighted_mean(&pairs) - 3.0).abs() < 1e-12);
        assert!((weighted_variance(&pairs) - 3.0).abs() < 1e-12);
        assert_eq!(weighted_mean(&[]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&xs), 3.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "quantile of empty sample")]
    fn quantile_rejects_empty() {
        quantile(&[], 0.5);
    }
}
