//! Beta distribution.

use crate::gamma::Gamma;
use crate::special::ln_beta;
use crate::traits::{Distribution, Moments, ParamError};
use rand::Rng;

/// Beta distribution `Beta(alpha, beta)` on the open unit interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

/// The Beta log-density as a free scalar kernel, shared by the scalar
/// [`Distribution::log_pdf`] and all batched evaluators so their
/// bit-identity is structural.
#[inline(always)]
pub(crate) fn log_pdf_kernel(alpha: f64, beta: f64, x: f64) -> f64 {
    if x <= 0.0 || x >= 1.0 {
        return f64::NEG_INFINITY;
    }
    (alpha - 1.0) * x.ln() + (beta - 1.0) * (1.0 - x).ln() - ln_beta(alpha, beta)
}

impl Beta {
    /// Creates `Beta(alpha, beta)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless both parameters are strictly positive
    /// and finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, ParamError> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(ParamError::new(format!(
                "beta alpha must be positive and finite, got {alpha}"
            )));
        }
        if !(beta.is_finite() && beta > 0.0) {
            return Err(ParamError::new(format!(
                "beta beta must be positive and finite, got {beta}"
            )));
        }
        Ok(Beta { alpha, beta })
    }

    /// First shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Second shape parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Evaluates the log-density over a slice of observations in one
    /// tight loop. Element-wise bit-identical to the scalar
    /// [`Distribution::log_pdf`] — both dispatch to the same kernel.
    pub fn log_pdf_batch(&self, xs: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.log_pdf_batch_into(xs, &mut out);
        out
    }

    /// [`Beta::log_pdf_batch`] into a caller-owned buffer (cleared first).
    pub fn log_pdf_batch_into(&self, xs: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(xs.len());
        let (alpha, beta) = (self.alpha, self.beta);
        out.extend(xs.iter().map(|&x| log_pdf_kernel(alpha, beta, x)));
    }
}

impl Distribution for Beta {
    type Item = f64;

    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = Gamma::draw_with_shape(rng, self.alpha);
        let y = Gamma::draw_with_shape(rng, self.beta);
        // Clamp away from the boundary so downstream Bernoulli(p) stays valid.
        (x / (x + y)).clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON)
    }

    #[inline]
    fn log_pdf(&self, x: &f64) -> f64 {
        log_pdf_kernel(self.alpha, self.beta, *x)
    }
}

impl Moments for Beta {
    fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }
}

impl std::fmt::Display for Beta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Beta({}, {})", self.alpha, self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, 0.0).is_err());
        assert!(Beta::new(-1.0, 1.0).is_err());
        assert!(Beta::new(1.0, 1.0).is_ok());
    }

    #[test]
    fn uniform_special_case() {
        // Beta(1,1) is Uniform(0,1): density 1 on (0,1).
        let d = Beta::new(1.0, 1.0).unwrap();
        assert!((d.log_pdf(&0.3)).abs() < 1e-12);
        assert!((d.log_pdf(&0.9)).abs() < 1e-12);
        assert_eq!(d.log_pdf(&0.0), f64::NEG_INFINITY);
        assert_eq!(d.log_pdf(&1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn moments() {
        let d = Beta::new(2.0, 6.0).unwrap();
        assert!((d.mean() - 0.25).abs() < 1e-12);
        assert!((d.variance() - (2.0 * 6.0 / (64.0 * 9.0))).abs() < 1e-12);
    }

    #[test]
    fn sample_moments_match() {
        let d = Beta::new(3.0, 2.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        assert!((m - 0.6).abs() < 0.01, "mean {m}");
        assert!(xs.iter().all(|&x| x > 0.0 && x < 1.0));
    }

    #[test]
    fn paper_outlier_prior_mean() {
        // Beta(100, 1000): "invalid readings occur approximately 10% of the
        // time" (~0.0909 exactly).
        let d = Beta::new(100.0, 1000.0).unwrap();
        assert!((d.mean() - 100.0 / 1100.0).abs() < 1e-12);
    }
}
