//! Negative binomial distribution (generalized to real-valued `r`).

use crate::special::ln_gamma;
use crate::traits::{Distribution, Moments, ParamError};
use rand::Rng;

/// Negative binomial distribution `NB(r, p)` over counts `k >= 0`, with
/// real-valued shape `r > 0` and success probability `p` in `(0, 1]`:
///
/// `P(K = k) = Γ(k + r) / (k! Γ(r)) · p^r (1 - p)^k`
///
/// This is the closed-form marginal of a `Poisson(lambda)` observation with
/// a `Gamma(r, rate)` prior on `lambda`, where `p = rate / (rate + 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegativeBinomial {
    r: f64,
    p: f64,
}

impl NegativeBinomial {
    /// Creates `NB(r, p)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `r > 0` and `0 < p <= 1`.
    pub fn new(r: f64, p: f64) -> Result<Self, ParamError> {
        if !(r.is_finite() && r > 0.0) {
            return Err(ParamError::new(format!(
                "negative binomial shape must be positive and finite, got {r}"
            )));
        }
        if !(p.is_finite() && p > 0.0 && p <= 1.0) {
            return Err(ParamError::new(format!(
                "negative binomial probability must be in (0, 1], got {p}"
            )));
        }
        Ok(NegativeBinomial { r, p })
    }

    /// Shape parameter `r`.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// Success probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distribution for NegativeBinomial {
    type Item = u64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Gamma-Poisson mixture representation.
        let rate = self.p / (1.0 - self.p).max(f64::MIN_POSITIVE);
        let lambda = crate::gamma::Gamma::draw_with_shape(rng, self.r) / rate;
        if lambda <= 0.0 {
            return 0;
        }
        crate::poisson::Poisson::new(lambda.max(f64::MIN_POSITIVE))
            .expect("positive rate")
            .sample(rng)
    }

    fn log_pdf(&self, k: &u64) -> f64 {
        let kf = *k as f64;
        let tail = if *k == 0 {
            0.0
        } else {
            kf * (1.0 - self.p).ln()
        };
        ln_gamma(kf + self.r) - ln_gamma(kf + 1.0) - ln_gamma(self.r) + self.r * self.p.ln() + tail
    }
}

impl Moments for NegativeBinomial {
    fn mean(&self) -> f64 {
        self.r * (1.0 - self.p) / self.p
    }

    fn variance(&self) -> f64 {
        self.r * (1.0 - self.p) / (self.p * self.p)
    }
}

impl std::fmt::Display for NegativeBinomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NB({}, {})", self.r, self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(NegativeBinomial::new(0.0, 0.5).is_err());
        assert!(NegativeBinomial::new(1.0, 0.0).is_err());
        assert!(NegativeBinomial::new(1.0, 1.5).is_err());
        assert!(NegativeBinomial::new(2.5, 0.4).is_ok());
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = NegativeBinomial::new(3.5, 0.6).unwrap();
        let total: f64 = (0..200).map(|k| d.pdf(&k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn geometric_special_case() {
        // NB(1, p) is Geometric(p): P(K = k) = p (1-p)^k.
        let d = NegativeBinomial::new(1.0, 0.3).unwrap();
        for k in 0..10u64 {
            let expected = 0.3 * 0.7f64.powi(k as i32);
            assert!((d.pdf(&k) - expected).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn sample_mean_matches() {
        let d = NegativeBinomial::new(4.0, 0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(21);
        let n = 50_000;
        let s: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let m = s as f64 / n as f64;
        assert!((m - d.mean()).abs() < 0.1, "mean {m} expected {}", d.mean());
    }
}
