//! Special mathematical functions used by the distribution implementations.
//!
//! Everything here is implemented from scratch on `f64`, with accuracy that
//! is more than sufficient for inference workloads (absolute error below
//! `1e-12` for `ln_gamma` over the positive reals, below `1.5e-7` for `erf`).

/// Natural logarithm of the Gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with `g = 7` and 9 coefficients.
///
/// # Panics
///
/// Panics if `x` is not finite or `x <= 0`.
///
/// # Examples
///
/// ```
/// use probzelus_distributions::special::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-12);           // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10); // Γ(5) = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite() && x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural logarithm of the Beta function,
/// `ln B(a, b) = ln Γ(a) + ln Γ(b) - ln Γ(a + b)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `b <= 0`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// `ln(n!)` for non-negative `n`, exact summation for small `n` and
/// `ln_gamma` beyond.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 32 {
        let mut acc = 0.0f64;
        for k in 2..=n {
            acc += (k as f64).ln();
        }
        acc
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Log of the binomial coefficient `C(n, k)`.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose requires k <= n, got k={k}, n={n}");
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Error function `erf(x)`, via the Abramowitz & Stegun 7.1.26 rational
/// approximation (max absolute error `1.5e-7`).
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Standard normal cumulative distribution function `Φ(z)`.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Numerically stable `ln(Σ exp(x_i))` over a slice.
///
/// Returns negative infinity for an empty slice (the log of an empty sum).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        // Either empty, all -inf, or contains +inf/NaN; in the all -inf and
        // empty cases the sum is 0 so the log is -inf.
        return m;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u64 {
            assert!(
                close(ln_gamma(n as f64), fact.ln(), 1e-10),
                "ln_gamma({n}) = {}, expected {}",
                ln_gamma(n as f64),
                fact.ln()
            );
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!(close(ln_gamma(0.5), expected, 1e-10));
    }

    #[test]
    fn ln_gamma_reflection_small_values() {
        // Γ(0.25) ≈ 3.625609908
        assert!(close(ln_gamma(0.25), 3.625_609_908_221_908f64.ln(), 1e-9));
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn ln_beta_symmetry_and_values() {
        assert!(close(ln_beta(1.0, 1.0), 0.0, 1e-12)); // B(1,1) = 1
        assert!(close(ln_beta(2.0, 3.0), (1.0f64 / 12.0).ln(), 1e-10));
        assert!(close(ln_beta(4.5, 2.5), ln_beta(2.5, 4.5), 1e-12));
    }

    #[test]
    fn ln_factorial_small_and_large_agree() {
        for n in 0..40u64 {
            let direct: f64 = (2..=n).map(|k| (k as f64).ln()).sum();
            assert!(close(ln_factorial(n), direct, 1e-10), "n = {n}");
        }
    }

    #[test]
    fn ln_choose_pascal_identity() {
        // C(10, 3) = 120
        assert!(close(ln_choose(10, 3), 120.0f64.ln(), 1e-10));
        assert!(close(ln_choose(10, 0), 0.0, 1e-12));
        assert!(close(ln_choose(10, 10), 0.0, 1e-12));
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-12);
        assert!(close(erf(1.0), 0.842_700_792_949_714_9, 2e-7));
        assert!(close(erf(-1.0), -0.842_700_792_949_714_9, 2e-7));
        assert!((erf(5.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn std_normal_cdf_symmetry() {
        assert!(close(std_normal_cdf(0.0), 0.5, 1e-9));
        for z in [-2.0, -0.5, 0.3, 1.7] {
            assert!(close(std_normal_cdf(z) + std_normal_cdf(-z), 1.0, 1e-6));
        }
        assert!(close(std_normal_cdf(1.959_963_985), 0.975, 1e-4));
    }

    #[test]
    fn log_sum_exp_stability() {
        assert!(close(log_sum_exp(&[0.0, 0.0]), 2.0f64.ln(), 1e-12));
        // Huge magnitudes must not overflow.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!(close(v, 1000.0 + 2.0f64.ln(), 1e-12));
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(
            log_sum_exp(&[f64::NEG_INFINITY, f64::NEG_INFINITY]),
            f64::NEG_INFINITY
        );
    }
}
