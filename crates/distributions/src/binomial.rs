//! Binomial and Beta-Binomial distributions.

use crate::special::{ln_beta, ln_choose};
use crate::traits::{Distribution, Moments, ParamError};
use rand::Rng;

/// Binomial distribution: number of successes in `n` independent
/// `Bernoulli(p)` trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates `Binomial(n, p)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `0 <= p <= 1`.
    pub fn new(n: u64, p: f64) -> Result<Self, ParamError> {
        if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
            return Err(ParamError::new(format!(
                "binomial probability must be in [0, 1], got {p}"
            )));
        }
        Ok(Binomial { n, p })
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distribution for Binomial {
    type Item = u64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        (0..self.n)
            .filter(|_| rng.gen_range(0.0f64..1.0) < self.p)
            .count() as u64
    }

    fn log_pdf(&self, k: &u64) -> f64 {
        if *k > self.n {
            return f64::NEG_INFINITY;
        }
        let kf = *k as f64;
        let nf = self.n as f64;
        let term_p = if *k == 0 { 0.0 } else { kf * self.p.ln() };
        let term_q = if *k == self.n {
            0.0
        } else {
            (nf - kf) * (1.0 - self.p).ln()
        };
        ln_choose(self.n, *k) + term_p + term_q
    }
}

impl Moments for Binomial {
    fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }
}

impl std::fmt::Display for Binomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Binomial({}, {})", self.n, self.p)
    }
}

/// Beta-Binomial compound distribution: `K ~ Binomial(n, P)` with
/// `P ~ Beta(alpha, beta)` marginalized out.
///
/// This is the closed-form marginal that delayed sampling produces when a
/// binomial observation is conjugate to a beta-distributed parent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaBinomial {
    n: u64,
    alpha: f64,
    beta: f64,
}

impl BetaBinomial {
    /// Creates `BetaBinomial(n, alpha, beta)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless both shape parameters are strictly
    /// positive and finite.
    pub fn new(n: u64, alpha: f64, beta: f64) -> Result<Self, ParamError> {
        if !(alpha.is_finite() && alpha > 0.0 && beta.is_finite() && beta > 0.0) {
            return Err(ParamError::new(format!(
                "beta-binomial shapes must be positive and finite, got ({alpha}, {beta})"
            )));
        }
        Ok(BetaBinomial { n, alpha, beta })
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// First shape parameter of the mixing Beta.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Second shape parameter of the mixing Beta.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Distribution for BetaBinomial {
    type Item = u64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let p = crate::beta::Beta::new(self.alpha, self.beta)
            .expect("validated at construction")
            .sample(rng);
        Binomial { n: self.n, p }.sample(rng)
    }

    fn log_pdf(&self, k: &u64) -> f64 {
        if *k > self.n {
            return f64::NEG_INFINITY;
        }
        let kf = *k as f64;
        let nf = self.n as f64;
        ln_choose(self.n, *k) + ln_beta(kf + self.alpha, nf - kf + self.beta)
            - ln_beta(self.alpha, self.beta)
    }
}

impl Moments for BetaBinomial {
    fn mean(&self) -> f64 {
        self.n as f64 * self.alpha / (self.alpha + self.beta)
    }

    fn variance(&self) -> f64 {
        let n = self.n as f64;
        let a = self.alpha;
        let b = self.beta;
        n * a * b * (a + b + n) / ((a + b) * (a + b) * (a + b + 1.0))
    }
}

impl std::fmt::Display for BetaBinomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BetaBinomial({}, {}, {})", self.n, self.alpha, self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_pmf_sums_to_one() {
        let d = Binomial::new(12, 0.3).unwrap();
        let total: f64 = (0..=12).map(|k| d.pdf(&k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn binomial_edge_probabilities() {
        let d = Binomial::new(5, 0.0).unwrap();
        assert_eq!(d.pdf(&0), 1.0);
        assert_eq!(d.log_pdf(&1), f64::NEG_INFINITY);
        let d = Binomial::new(5, 1.0).unwrap();
        assert_eq!(d.pdf(&5), 1.0);
        assert_eq!(d.log_pdf(&6), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_sample_mean() {
        let d = Binomial::new(20, 0.4).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 50_000;
        let s: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let m = s as f64 / n as f64;
        assert!((m - 8.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn beta_binomial_pmf_sums_to_one() {
        let d = BetaBinomial::new(15, 2.5, 4.0).unwrap();
        let total: f64 = (0..=15).map(|k| d.pdf(&k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn beta_binomial_uniform_mixing_is_discrete_uniform() {
        // With Beta(1,1) mixing, every count 0..=n is equally likely.
        let d = BetaBinomial::new(10, 1.0, 1.0).unwrap();
        for k in 0..=10u64 {
            assert!((d.pdf(&k) - 1.0 / 11.0).abs() < 1e-10, "k = {k}");
        }
    }

    #[test]
    fn beta_binomial_moments() {
        let d = BetaBinomial::new(10, 2.0, 3.0).unwrap();
        assert!((d.mean() - 4.0).abs() < 1e-12);
        let expected_var = 10.0 * 2.0 * 3.0 * 15.0 / (25.0 * 6.0);
        assert!((d.variance() - expected_var).abs() < 1e-12);
    }
}
