//! Univariate Gaussian (normal) distribution.

use crate::special::std_normal_cdf;
use crate::traits::{Distribution, Moments, ParamError};
use rand::Rng;

/// Gaussian distribution `N(mean, var)` parameterized by mean and
/// **variance** (not standard deviation), following the convention used
/// throughout the ProbZelus paper (`gaussian(0., 100.)` is the wide prior of
/// the Kalman benchmark).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    var: f64,
}

/// `ln(2π)`, hoisted out of the `log_pdf` hot path. Bit-identical to the
/// runtime value `(2.0 * std::f64::consts::PI).ln()` (asserted in tests),
/// so hoisting it preserves the determinism contract.
const LN_2PI: f64 = 1.837_877_066_409_345_3_f64;

/// The Gaussian log-density as a free scalar kernel. Both the scalar
/// [`Distribution::log_pdf`] and every batched evaluator go through this
/// single expression, which is what makes batch-vs-scalar bit-identity a
/// structural property instead of a numeric coincidence.
#[inline(always)]
pub(crate) fn log_pdf_kernel(mean: f64, var: f64, x: f64) -> f64 {
    let d = x - mean;
    -0.5 * (d * d / var + var.ln() + LN_2PI)
}

impl Gaussian {
    /// Creates `N(mean, var)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `var` is not a strictly positive finite
    /// number or `mean` is not finite.
    pub fn new(mean: f64, var: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() {
            return Err(ParamError::new(format!(
                "gaussian mean must be finite, got {mean}"
            )));
        }
        if !(var.is_finite() && var > 0.0) {
            return Err(ParamError::new(format!(
                "gaussian variance must be positive and finite, got {var}"
            )));
        }
        Ok(Gaussian { mean, var })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Gaussian {
            mean: 0.0,
            var: 1.0,
        }
    }

    /// Mean parameter.
    pub fn mean_param(&self) -> f64 {
        self.mean
    }

    /// Variance parameter.
    pub fn var_param(&self) -> f64 {
        self.var
    }

    /// Cumulative distribution function `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mean) / self.var.sqrt())
    }

    /// Probability that `X` lands in the closed interval `[lo, hi]`.
    ///
    /// Returns `0.0` if `hi < lo`.
    pub fn prob_interval(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return 0.0;
        }
        (self.cdf(hi) - self.cdf(lo)).max(0.0)
    }

    /// Evaluates the log-density over a slice of observations in one
    /// tight loop (fixed parameters hoisted, auto-vectorizable).
    /// Element-wise bit-identical to calling [`Distribution::log_pdf`]
    /// per element — both dispatch to the same scalar kernel.
    pub fn log_pdf_batch(&self, xs: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.log_pdf_batch_into(xs, &mut out);
        out
    }

    /// [`Gaussian::log_pdf_batch`] into a caller-owned buffer (cleared
    /// first), so per-tick hot loops reuse one allocation.
    pub fn log_pdf_batch_into(&self, xs: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(xs.len());
        let (mean, var) = (self.mean, self.var);
        out.extend(xs.iter().map(|&x| log_pdf_kernel(mean, var, x)));
    }

    /// Draws a standard-normal variate with the Marsaglia polar method.
    #[inline]
    pub(crate) fn draw_std<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Distribution for Gaussian {
    type Item = f64;

    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.var.sqrt() * Self::draw_std(rng)
    }

    #[inline]
    fn log_pdf(&self, x: &f64) -> f64 {
        log_pdf_kernel(self.mean, self.var, *x)
    }
}

impl Moments for Gaussian {
    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.var
    }
}

impl std::fmt::Display for Gaussian {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N({}, {})", self.mean, self.var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gaussian::new(0.0, 0.0).is_err());
        assert!(Gaussian::new(0.0, -1.0).is_err());
        assert!(Gaussian::new(f64::NAN, 1.0).is_err());
        assert!(Gaussian::new(0.0, f64::INFINITY).is_err());
        assert!(Gaussian::new(1.5, 2.5).is_ok());
    }

    #[test]
    fn log_pdf_standard_normal_at_zero() {
        let d = Gaussian::standard();
        let expected = -0.5 * (2.0 * std::f64::consts::PI).ln();
        assert!((d.log_pdf(&0.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn hoisted_ln_2pi_is_bit_identical_to_runtime() {
        let runtime = (2.0 * std::f64::consts::PI).ln();
        assert_eq!(LN_2PI.to_bits(), runtime.to_bits());
    }

    #[test]
    fn log_pdf_is_symmetric_about_mean() {
        let d = Gaussian::new(3.0, 4.0).unwrap();
        assert!((d.log_pdf(&5.0) - d.log_pdf(&1.0)).abs() < 1e-12);
    }

    #[test]
    fn sample_moments_match() {
        let d = Gaussian::new(-2.0, 9.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        assert!((m - -2.0).abs() < 0.05, "mean {m}");
        assert!((v - 9.0).abs() < 0.2, "variance {v}");
    }

    #[test]
    fn cdf_and_interval() {
        let d = Gaussian::new(0.0, 1.0).unwrap();
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-6);
        // ~68% within one std dev.
        let p = d.prob_interval(-1.0, 1.0);
        assert!((p - 0.6827).abs() < 1e-3, "got {p}");
        assert_eq!(d.prob_interval(1.0, -1.0), 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Gaussian::standard().to_string(), "N(0, 1)");
    }
}
