//! The [`Distribution`] trait implemented by every distribution family in
//! this crate.

use rand::Rng;

/// A probability distribution over values of type [`Distribution::Item`].
///
/// Implementors provide sampling and log-density evaluation; continuous
/// families report densities with respect to the Lebesgue measure, discrete
/// families with respect to the counting measure (i.e. a log probability
/// mass function).
///
/// # Examples
///
/// ```
/// use probzelus_distributions::{Distribution, Gaussian};
/// use rand::SeedableRng;
///
/// let d = Gaussian::new(0.0, 1.0).unwrap();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let x = d.sample(&mut rng);
/// assert!(d.log_pdf(&x).is_finite());
/// ```
pub trait Distribution {
    /// The type of values this distribution ranges over.
    type Item;

    /// Draws a random sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Item;

    /// Log density (or log mass) of `x`.
    ///
    /// Returns `f64::NEG_INFINITY` for values outside the support.
    fn log_pdf(&self, x: &Self::Item) -> f64;

    /// Density (or mass) of `x`, `exp(log_pdf(x))`.
    fn pdf(&self, x: &Self::Item) -> f64 {
        self.log_pdf(x).exp()
    }
}

/// Distributions with a defined mean and variance on `f64`.
///
/// Discrete numeric distributions implement this with their values mapped
/// into `f64` (e.g. `true -> 1.0` for Bernoulli).
pub trait Moments {
    /// Expected value.
    fn mean(&self) -> f64;
    /// Variance.
    fn variance(&self) -> f64;
    /// Standard deviation, `sqrt(variance)`.
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Error returned when constructing a distribution with invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError {
    message: String,
}

impl ParamError {
    /// Creates a new parameter error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ParamError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.message)
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_error_display() {
        let e = ParamError::new("variance must be positive");
        assert_eq!(
            e.to_string(),
            "invalid distribution parameter: variance must be positive"
        );
    }

    #[test]
    fn param_error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<ParamError>();
    }
}
