//! Batched log-density kernels over parameter/observation slices.
//!
//! Each `*_log_pdf_into` evaluates one distribution family over parallel
//! slices of per-element parameters and observations in a single tight
//! loop. The loops have no bounds checks after the up-front length
//! asserts and no calls other than the shared scalar kernels, so the
//! compiler is free to unroll and auto-vectorize them.
//!
//! **Bit-exactness contract:** every element of the output is produced by
//! the *same* `#[inline(always)]` scalar kernel that the corresponding
//! [`crate::Distribution::log_pdf`] uses. Batch-vs-scalar bit-identity is
//! therefore structural — there is no second formula to drift — which is
//! what lets the structure-of-arrays inference layout promise posteriors
//! bitwise-identical to the per-particle layout.

use crate::{beta, gamma, gaussian};

/// Gaussian log-density over parallel `(mean, var, x)` triples.
///
/// `out` is cleared first and refilled with one entry per element.
///
/// # Panics
///
/// Panics if the three input slices differ in length.
pub fn gaussian_log_pdf_into(means: &[f64], vars: &[f64], xs: &[f64], out: &mut Vec<f64>) {
    assert_eq!(
        means.len(),
        xs.len(),
        "gaussian batch: means/xs length mismatch"
    );
    assert_eq!(
        vars.len(),
        xs.len(),
        "gaussian batch: vars/xs length mismatch"
    );
    out.clear();
    out.reserve(xs.len());
    out.extend(
        means
            .iter()
            .zip(vars)
            .zip(xs)
            .map(|((&m, &v), &x)| gaussian::log_pdf_kernel(m, v, x)),
    );
}

/// Beta log-density over parallel `(alpha, beta, x)` triples.
///
/// `out` is cleared first and refilled with one entry per element.
///
/// # Panics
///
/// Panics if the three input slices differ in length.
pub fn beta_log_pdf_into(alphas: &[f64], betas: &[f64], xs: &[f64], out: &mut Vec<f64>) {
    assert_eq!(
        alphas.len(),
        xs.len(),
        "beta batch: alphas/xs length mismatch"
    );
    assert_eq!(
        betas.len(),
        xs.len(),
        "beta batch: betas/xs length mismatch"
    );
    out.clear();
    out.reserve(xs.len());
    out.extend(
        alphas
            .iter()
            .zip(betas)
            .zip(xs)
            .map(|((&a, &b), &x)| beta::log_pdf_kernel(a, b, x)),
    );
}

/// Gamma log-density over parallel `(shape, rate, x)` triples.
///
/// `out` is cleared first and refilled with one entry per element.
///
/// # Panics
///
/// Panics if the three input slices differ in length.
pub fn gamma_log_pdf_into(shapes: &[f64], rates: &[f64], xs: &[f64], out: &mut Vec<f64>) {
    assert_eq!(
        shapes.len(),
        xs.len(),
        "gamma batch: shapes/xs length mismatch"
    );
    assert_eq!(
        rates.len(),
        xs.len(),
        "gamma batch: rates/xs length mismatch"
    );
    out.clear();
    out.reserve(xs.len());
    out.extend(
        shapes
            .iter()
            .zip(rates)
            .zip(xs)
            .map(|((&s, &r), &x)| gamma::log_pdf_kernel(s, r, x)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Distribution;
    use crate::{Beta, Gamma, Gaussian};

    #[test]
    fn gaussian_batch_is_bitwise_scalar() {
        let means = [0.0, 1.5, -3.0, 0.0, 7.0];
        let vars = [1.0, 0.25, 100.0, 2.0, 0.5];
        let xs = [0.3, 1.5, -300.0, f64::NAN, f64::INFINITY];
        let mut out = Vec::new();
        gaussian_log_pdf_into(&means, &vars, &xs, &mut out);
        for i in 0..xs.len() {
            let d = Gaussian::new(means[i], vars[i]).unwrap();
            assert_eq!(out[i].to_bits(), d.log_pdf(&xs[i]).to_bits(), "elem {i}");
        }
    }

    #[test]
    fn beta_batch_is_bitwise_scalar() {
        let alphas = [1.0, 2.0, 0.5, 100.0, 3.0];
        let betas = [1.0, 6.0, 0.5, 1000.0, 3.0];
        let xs = [0.3, 0.0, 1.0, 0.0909, f64::NAN];
        let mut out = Vec::new();
        beta_log_pdf_into(&alphas, &betas, &xs, &mut out);
        for i in 0..xs.len() {
            let d = Beta::new(alphas[i], betas[i]).unwrap();
            assert_eq!(out[i].to_bits(), d.log_pdf(&xs[i]).to_bits(), "elem {i}");
        }
    }

    #[test]
    fn gamma_batch_is_bitwise_scalar() {
        let shapes = [1.0, 4.0, 0.5, 2.0, 9.0];
        let rates = [2.0, 2.0, 1.0, 3.0, 0.5];
        let xs = [0.7, -1.0, 0.0, f64::INFINITY, 4.0];
        let mut out = Vec::new();
        gamma_log_pdf_into(&shapes, &rates, &xs, &mut out);
        for i in 0..xs.len() {
            let d = Gamma::new(shapes[i], rates[i]).unwrap();
            assert_eq!(out[i].to_bits(), d.log_pdf(&xs[i]).to_bits(), "elem {i}");
        }
    }

    #[test]
    fn fixed_param_batch_matches_scalar_loop() {
        let d = Gaussian::new(2.0, 3.0).unwrap();
        let xs: Vec<f64> = (0..64).map(|i| i as f64 * 0.37 - 5.0).collect();
        let batch = d.log_pdf_batch(&xs);
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(batch[i].to_bits(), d.log_pdf(x).to_bits());
        }
        let b = Beta::new(2.0, 5.0).unwrap();
        let xs: Vec<f64> = (0..64).map(|i| i as f64 / 63.0).collect();
        let batch = b.log_pdf_batch(&xs);
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(batch[i].to_bits(), b.log_pdf(x).to_bits());
        }
        let g = Gamma::new(3.0, 1.5).unwrap();
        let batch = g.log_pdf_batch(&xs);
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(batch[i].to_bits(), g.log_pdf(x).to_bits());
        }
    }

    #[test]
    fn into_variants_reuse_buffer_and_clear() {
        let mut out = vec![99.0; 8];
        let d = Gaussian::standard();
        d.log_pdf_batch_into(&[0.0, 1.0], &mut out);
        assert_eq!(out.len(), 2);
        gaussian_log_pdf_into(&[0.0], &[1.0], &[0.0], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to_bits(), d.log_pdf(&0.0).to_bits());
    }
}
