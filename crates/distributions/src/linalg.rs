//! Small dense linear algebra for the multivariate-Gaussian support.
//!
//! The delayed sampler manipulates low-dimensional state vectors (position,
//! velocity, …), so this is a deliberately simple row-major `f64` matrix
//! with the handful of operations conjugate Kalman algebra needs: products,
//! transposes, Cholesky factorization (for sampling and log-densities), and
//! positive-definite solves.

use crate::traits::ParamError;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// A column vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Builds a vector from components.
    pub fn new(data: Vec<f64>) -> Vector {
        Vector { data }
    }

    /// The zero vector of dimension `n`.
    pub fn zeros(n: usize) -> Vector {
        Vector { data: vec![0.0; n] }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// Component access.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> f64 {
        self.data[i]
    }

    /// Components as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Componentwise sum.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add(&self, other: &Vector) -> Vector {
        assert_eq!(self.dim(), other.dim(), "vector dimension mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Componentwise difference.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn sub(&self, other: &Vector) -> Vector {
        assert_eq!(self.dim(), other.dim(), "vector dimension mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|x| x * k).collect(),
        }
    }

    /// Dot product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "vector dimension mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }
}

impl Matrix {
    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds from nested rows.
    ///
    /// # Panics
    ///
    /// Panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged matrix rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// The zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Matrix sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Matrix difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * out.cols + j] += a * other.get(k, j);
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec(&self, v: &Vector) -> Vector {
        assert_eq!(self.cols, v.dim(), "dimension mismatch");
        Vector {
            data: (0..self.rows)
                .map(|i| (0..self.cols).map(|j| self.get(i, j) * v.get(j)).sum())
                .collect(),
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * k).collect(),
        }
    }

    /// Symmetrizes in place (`(M + Mᵀ)/2`), for numerical hygiene of
    /// covariance updates.
    pub fn symmetrized(&self) -> Matrix {
        self.add(&self.transpose()).scale(0.5)
    }

    /// Cholesky factorization `M = L Lᵀ` of a symmetric positive-definite
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when the matrix is not (numerically)
    /// positive definite.
    pub fn cholesky(&self) -> Result<Matrix, ParamError> {
        assert_eq!(self.rows, self.cols, "cholesky needs a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = self.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(ParamError::new(format!(
                            "matrix is not positive definite (pivot {s} at {i})"
                        )));
                    }
                    l.set(i, j, s.sqrt());
                } else {
                    l.set(i, j, s / l.get(j, j));
                }
            }
        }
        Ok(l)
    }

    /// Solves `M x = b` for a symmetric positive-definite `M` via
    /// Cholesky.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when `M` is not positive definite.
    pub fn solve_spd(&self, b: &Vector) -> Result<Vector, ParamError> {
        let l = self.cholesky()?;
        Ok(l.solve_lower_transpose(&l.solve_lower(b)))
    }

    /// Solves `M X = B` columnwise for SPD `M`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when `M` is not positive definite.
    pub fn solve_spd_matrix(&self, b: &Matrix) -> Result<Matrix, ParamError> {
        let l = self.cholesky()?;
        let mut out = Matrix::zeros(b.rows, b.cols);
        for j in 0..b.cols {
            let col = Vector::new((0..b.rows).map(|i| b.get(i, j)).collect());
            let x = l.solve_lower_transpose(&l.solve_lower(&col));
            for i in 0..b.rows {
                out.set(i, j, x.get(i));
            }
        }
        Ok(out)
    }

    /// Forward substitution `L y = b` for lower-triangular `L` (self).
    fn solve_lower(&self, b: &Vector) -> Vector {
        let n = self.rows;
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b.get(i);
            for (k, yk) in y.iter().enumerate().take(i) {
                s -= self.get(i, k) * yk;
            }
            y[i] = s / self.get(i, i);
        }
        Vector::new(y)
    }

    /// Back substitution `Lᵀ x = y` for lower-triangular `L` (self).
    fn solve_lower_transpose(&self, y: &Vector) -> Vector {
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y.get(i);
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.get(k, i) * xk;
            }
            x[i] = s / self.get(i, i);
        }
        Vector::new(x)
    }

    /// Log-determinant of an SPD matrix (via Cholesky).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when the matrix is not positive definite.
    pub fn log_det_spd(&self) -> Result<f64, ParamError> {
        let l = self.cholesky()?;
        Ok(2.0 * (0..self.rows).map(|i| l.get(i, i).ln()).sum::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd2() -> Matrix {
        Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])
    }

    #[test]
    fn products_and_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert_eq!(a.mul(&b), Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
        assert_eq!(
            a.transpose(),
            Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]])
        );
        let v = Vector::new(vec![1.0, -1.0]);
        assert_eq!(a.mul_vec(&v), Vector::new(vec![-1.0, -1.0]));
        assert_eq!(Matrix::identity(2).mul(&a), a);
    }

    #[test]
    fn vector_algebra() {
        let a = Vector::new(vec![1.0, 2.0]);
        let b = Vector::new(vec![3.0, -1.0]);
        assert_eq!(a.add(&b), Vector::new(vec![4.0, 1.0]));
        assert_eq!(a.sub(&b), Vector::new(vec![-2.0, 3.0]));
        assert_eq!(a.scale(2.0), Vector::new(vec![2.0, 4.0]));
        assert_eq!(a.dot(&b), 1.0);
        assert_eq!(Vector::zeros(3).dim(), 3);
    }

    #[test]
    fn cholesky_reconstructs() {
        let m = spd2();
        let l = m.cholesky().unwrap();
        let rec = l.mul(&l.transpose());
        for i in 0..2 {
            for j in 0..2 {
                assert!((rec.get(i, j) - m.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(m.cholesky().is_err());
    }

    #[test]
    fn spd_solve_matches_manual_inverse() {
        let m = spd2();
        let b = Vector::new(vec![1.0, 2.0]);
        let x = m.solve_spd(&b).unwrap();
        let back = m.mul_vec(&x);
        assert!((back.get(0) - 1.0).abs() < 1e-12);
        assert!((back.get(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn matrix_solve_spd() {
        let m = spd2();
        let x = m.solve_spd_matrix(&Matrix::identity(2)).unwrap();
        let id = m.mul(&x);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((id.get(i, j) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn log_det() {
        // det([[4,1],[1,3]]) = 11.
        assert!((spd2().log_det_spd().unwrap() - 11.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn symmetrize() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert_eq!(
            m.symmetrized(),
            Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]])
        );
    }
}
