//! Finite mixture distributions.

use crate::special::log_sum_exp;
use crate::traits::{Distribution, Moments, ParamError};
use rand::Rng;

/// Finite mixture of distributions of a common family `D`.
///
/// The streaming-delayed-sampling `infer` (ProbZelus §5.3) combines the
/// per-particle symbolic marginals into exactly such a weighted mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct Mixture<D> {
    components: Vec<(f64, D)>,
}

impl<D> Mixture<D> {
    /// Builds a mixture from `(weight, component)` pairs; weights are
    /// normalized. Zero total weight falls back to uniform weights.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `components` is empty or a weight is
    /// negative or non-finite.
    pub fn new(components: Vec<(f64, D)>) -> Result<Self, ParamError> {
        if components.is_empty() {
            return Err(ParamError::new("mixture needs at least one component"));
        }
        if components.iter().any(|(w, _)| !w.is_finite() || *w < 0.0) {
            return Err(ParamError::new(
                "mixture weights must be finite and non-negative",
            ));
        }
        let total: f64 = components.iter().map(|(w, _)| w).sum();
        let components = if total > 0.0 {
            components
                .into_iter()
                .map(|(w, d)| (w / total, d))
                .collect()
        } else {
            let n = components.len() as f64;
            components.into_iter().map(|(_, d)| (1.0 / n, d)).collect()
        };
        Ok(Mixture { components })
    }

    /// The normalized `(weight, component)` pairs.
    pub fn components(&self) -> &[(f64, D)] {
        &self.components
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the mixture has no components (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl<D: Distribution> Distribution for Mixture<D> {
    type Item = D::Item;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> D::Item {
        // The constructor rejects empty component lists, so the split
        // always succeeds; falling back on the last component absorbs
        // floating-point slack in the cumulative weights.
        let u: f64 = rng.gen_range(0.0f64..1.0);
        let (last, rest) = match self.components.split_last() {
            Some(pair) => pair,
            None => unreachable!("mixture constructor rejects empty components"),
        };
        let mut acc = 0.0;
        for (w, d) in rest {
            acc += w;
            if u < acc {
                return d.sample(rng);
            }
        }
        last.1.sample(rng)
    }

    fn log_pdf(&self, x: &D::Item) -> f64 {
        let terms: Vec<f64> = self
            .components
            .iter()
            .map(|(w, d)| w.ln() + d.log_pdf(x))
            .collect();
        log_sum_exp(&terms)
    }
}

impl<D: Moments> Moments for Mixture<D> {
    fn mean(&self) -> f64 {
        self.components.iter().map(|(w, d)| w * d.mean()).sum()
    }

    fn variance(&self) -> f64 {
        // Law of total variance.
        let m = self.mean();
        self.components
            .iter()
            .map(|(w, d)| w * (d.variance() + (d.mean() - m) * (d.mean() - m)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::Gaussian;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_and_bad_weights() {
        assert!(Mixture::<Gaussian>::new(vec![]).is_err());
        assert!(Mixture::new(vec![(-1.0, Gaussian::standard())]).is_err());
    }

    #[test]
    fn single_component_mixture_is_the_component() {
        let g = Gaussian::new(2.0, 3.0).unwrap();
        let m = Mixture::new(vec![(7.0, g)]).unwrap();
        assert!((m.log_pdf(&1.0) - g.log_pdf(&1.0)).abs() < 1e-12);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert!((m.variance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn total_variance_law() {
        let m = Mixture::new(vec![
            (0.5, Gaussian::new(-1.0, 1.0).unwrap()),
            (0.5, Gaussian::new(1.0, 1.0).unwrap()),
        ])
        .unwrap();
        assert!(m.mean().abs() < 1e-12);
        assert!((m.variance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_follows_weights() {
        let m = Mixture::new(vec![
            (0.9, Gaussian::new(-10.0, 0.01).unwrap()),
            (0.1, Gaussian::new(10.0, 0.01).unwrap()),
        ])
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        let n = 20_000;
        let neg = (0..n).filter(|_| m.sample(&mut rng) < 0.0).count() as f64 / n as f64;
        assert!((neg - 0.9).abs() < 0.01, "fraction {neg}");
    }

    #[test]
    fn zero_weights_become_uniform() {
        let m = Mixture::new(vec![
            (0.0, Gaussian::new(0.0, 1.0).unwrap()),
            (0.0, Gaussian::new(5.0, 1.0).unwrap()),
        ])
        .unwrap();
        assert!((m.components()[0].0 - 0.5).abs() < 1e-12);
        assert!((m.mean() - 2.5).abs() < 1e-12);
    }
}
