//! # probzelus-distributions
//!
//! Probability distributions, special functions, statistics utilities, and
//! the closed-form conjugacy algebra underlying the delayed-sampling
//! inference engines of [ProbZelus] (Baudart et al., *Reactive Probabilistic
//! Programming*, PLDI 2020).
//!
//! This crate is deliberately self-contained: samplers (Marsaglia polar,
//! Marsaglia–Tsang, Knuth, …) and special functions (`ln Γ`, `erf`, …) are
//! implemented from scratch on top of a uniform [`rand`] source so the whole
//! workspace depends only on the approved crate set.
//!
//! ## Quick example
//!
//! ```
//! use probzelus_distributions::{Distribution, Moments, Gaussian};
//! use probzelus_distributions::conjugacy::AffineGaussian;
//!
//! # fn main() -> Result<(), probzelus_distributions::ParamError> {
//! // A Kalman step in closed form: prior N(0, 100), identity dynamics,
//! // unit observation noise, observation y = 5.
//! let prior = Gaussian::new(0.0, 100.0)?;
//! let obs_link = AffineGaussian::new(1.0, 0.0, 1.0)?;
//! let posterior = obs_link.condition(prior, 5.0)?;
//! assert!(posterior.variance() < prior.variance());
//! # Ok(())
//! # }
//! ```
//!
//! [ProbZelus]: https://arxiv.org/abs/1908.07563

pub mod batch;
pub mod bernoulli;
pub mod beta;
pub mod binomial;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod conjugacy;
pub mod delta;
pub mod empirical;
pub mod exponential;
pub mod gamma;
pub mod gaussian;
pub mod linalg;
pub mod lomax;
pub mod mixture;
pub mod mv_gaussian;
pub mod negative_binomial;
pub mod poisson;
pub mod special;
pub mod stats;
pub mod traits;
pub mod uniform;

pub use bernoulli::Bernoulli;
pub use beta::Beta;
pub use binomial::{BetaBinomial, Binomial};
pub use delta::Delta;
pub use empirical::Empirical;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use gaussian::Gaussian;
pub use linalg::{Matrix, Vector};
pub use lomax::Lomax;
pub use mixture::Mixture;
pub use mv_gaussian::{MvAffineGaussian, MvGaussian};
pub use negative_binomial::NegativeBinomial;
pub use poisson::Poisson;
pub use traits::{Distribution, Moments, ParamError};
pub use uniform::Uniform;
