//! Gamma distribution (shape/rate parameterization).

use crate::gaussian::Gaussian;
use crate::special::ln_gamma;
use crate::traits::{Distribution, Moments, ParamError};
use rand::Rng;

/// Gamma distribution with shape `k` and **rate** `r` (density
/// `r^k x^{k-1} e^{-r x} / Γ(k)` on `x > 0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    rate: f64,
}

/// The Gamma log-density as a free scalar kernel, shared by the scalar
/// [`Distribution::log_pdf`] and all batched evaluators so their
/// bit-identity is structural.
#[inline(always)]
pub(crate) fn log_pdf_kernel(shape: f64, rate: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return f64::NEG_INFINITY;
    }
    shape * rate.ln() + (shape - 1.0) * x.ln() - rate * x - ln_gamma(shape)
}

impl Gamma {
    /// Creates `Gamma(shape, rate)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless both parameters are strictly positive
    /// and finite.
    pub fn new(shape: f64, rate: f64) -> Result<Self, ParamError> {
        if !(shape.is_finite() && shape > 0.0) {
            return Err(ParamError::new(format!(
                "gamma shape must be positive and finite, got {shape}"
            )));
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ParamError::new(format!(
                "gamma rate must be positive and finite, got {rate}"
            )));
        }
        Ok(Gamma { shape, rate })
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Rate parameter `r`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Evaluates the log-density over a slice of observations in one
    /// tight loop. Element-wise bit-identical to the scalar
    /// [`Distribution::log_pdf`] — both dispatch to the same kernel.
    pub fn log_pdf_batch(&self, xs: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.log_pdf_batch_into(xs, &mut out);
        out
    }

    /// [`Gamma::log_pdf_batch`] into a caller-owned buffer (cleared first).
    pub fn log_pdf_batch_into(&self, xs: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(xs.len());
        let (shape, rate) = (self.shape, self.rate);
        out.extend(xs.iter().map(|&x| log_pdf_kernel(shape, rate, x)));
    }

    /// Marsaglia–Tsang sampler for shape >= 1; boosted for shape < 1.
    pub(crate) fn draw_with_shape<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
        if shape < 1.0 {
            // Boost: if X ~ Gamma(shape + 1) and U ~ Uniform(0,1) then
            // X * U^{1/shape} ~ Gamma(shape).
            let x = Self::draw_with_shape(rng, shape + 1.0);
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            return x * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let z = Gaussian::draw_std(rng);
            let v = 1.0 + c * z;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u: f64 = rng.gen_range(0.0f64..1.0);
            if u < 1.0 - 0.0331 * z * z * z * z {
                return d * v3;
            }
            if u > 0.0 && u.ln() < 0.5 * z * z + d * (1.0 - v3 + v3.ln()) {
                return d * v3;
            }
        }
    }
}

impl Distribution for Gamma {
    type Item = f64;

    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Self::draw_with_shape(rng, self.shape) / self.rate
    }

    #[inline]
    fn log_pdf(&self, x: &f64) -> f64 {
        log_pdf_kernel(self.shape, self.rate, *x)
    }
}

impl Moments for Gamma {
    fn mean(&self) -> f64 {
        self.shape / self.rate
    }

    fn variance(&self) -> f64 {
        self.shape / (self.rate * self.rate)
    }
}

impl std::fmt::Display for Gamma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gamma({}, {})", self.shape, self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, -1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
        assert!(Gamma::new(2.0, 3.0).is_ok());
    }

    #[test]
    fn log_pdf_exponential_special_case() {
        // Gamma(1, r) is Exponential(r): density r e^{-r x}.
        let d = Gamma::new(1.0, 2.0).unwrap();
        let x = 0.7;
        let expected = (2.0f64).ln() - 2.0 * x;
        assert!((d.log_pdf(&x) - expected).abs() < 1e-12);
        assert_eq!(d.log_pdf(&-1.0), f64::NEG_INFINITY);
        assert_eq!(d.log_pdf(&0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn sample_moments_match_large_shape() {
        let d = Gamma::new(4.0, 2.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        assert!((m - 2.0).abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.05, "variance {v}");
    }

    #[test]
    fn sample_moments_match_small_shape() {
        let d = Gamma::new(0.5, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(12);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        assert!((m - 0.5).abs() < 0.02, "mean {m}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }
}
