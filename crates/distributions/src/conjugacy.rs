//! Closed-form conjugacy algebra.
//!
//! These are the analytic marginalization and conditioning rules that
//! delayed sampling (Murray et al. 2018; ProbZelus §5.2–5.3) exploits to
//! avoid Monte-Carlo sampling. Each supported pair provides:
//!
//! * **marginalize** — given the parent's marginal and the child's
//!   conditional, the child's marginal (used when extending the M-path);
//! * **condition** — given the parent's marginal, the child's conditional,
//!   and an observed child value, the parent's posterior (used when a
//!   realized child's evidence is folded into its parent).
//!
//! Supported pairs:
//!
//! | parent        | child conditional                  | marginal child    |
//! |---------------|------------------------------------|-------------------|
//! | Gaussian      | `N(a·parent + b, var)` (affine)    | Gaussian          |
//! | Beta          | `Bernoulli(parent)`                | Bernoulli         |
//! | Beta          | `Binomial(n, parent)`              | Beta-binomial     |
//! | Gamma         | `Poisson(scale · parent)`          | Negative binomial |
//! | Gamma         | `Exponential(scale · parent)`      | Lomax             |

use crate::bernoulli::Bernoulli;
use crate::beta::Beta;
use crate::binomial::BetaBinomial;
use crate::exponential::Exponential;
use crate::gamma::Gamma;
use crate::gaussian::Gaussian;
use crate::lomax::Lomax;
use crate::negative_binomial::NegativeBinomial;
use crate::traits::ParamError;

/// Affine-Gaussian link: `child | parent ~ N(a·parent + b, var)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineGaussian {
    /// Multiplicative coefficient applied to the parent.
    pub a: f64,
    /// Additive offset.
    pub b: f64,
    /// Conditional variance of the child.
    pub var: f64,
}

impl AffineGaussian {
    /// Creates the link `N(a·parent + b, var)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `var > 0` and `a`, `b` are finite.
    /// A zero coefficient `a` is allowed (the child is then independent of
    /// the parent), which the graph layer uses to degrade gracefully.
    pub fn new(a: f64, b: f64, var: f64) -> Result<Self, ParamError> {
        if !(a.is_finite() && b.is_finite()) {
            return Err(ParamError::new(format!(
                "affine coefficients must be finite, got a={a}, b={b}"
            )));
        }
        if !(var.is_finite() && var > 0.0) {
            return Err(ParamError::new(format!(
                "conditional variance must be positive, got {var}"
            )));
        }
        Ok(AffineGaussian { a, b, var })
    }

    /// Child's marginal: `N(a·m + b, a²·v + var)` for parent `N(m, v)`.
    ///
    /// # Errors
    ///
    /// [`ParamError`] if the resulting parameters are not representable
    /// (e.g. the mean overflows to `±inf` for extreme parents).
    pub fn marginalize(&self, parent: Gaussian) -> Result<Gaussian, ParamError> {
        Gaussian::new(
            self.a * parent.mean_param() + self.b,
            self.a * self.a * parent.var_param() + self.var,
        )
    }

    /// Parent's posterior after observing `child = obs`
    /// (the scalar Kalman update in information form).
    ///
    /// # Errors
    ///
    /// [`ParamError`] if the update degenerates numerically (a non-finite
    /// observation, or an overflowing posterior mean).
    pub fn condition(&self, parent: Gaussian, obs: f64) -> Result<Gaussian, ParamError> {
        let m0 = parent.mean_param();
        let v0 = parent.var_param();
        let prec = 1.0 / v0 + self.a * self.a / self.var;
        let post_var = 1.0 / prec;
        let post_mean = post_var * (m0 / v0 + self.a * (obs - self.b) / self.var);
        Gaussian::new(post_mean, post_var)
    }

    /// Child's conditional distribution for a realized parent value.
    ///
    /// # Errors
    ///
    /// [`ParamError`] for a non-finite realized parent value.
    pub fn instantiate(&self, parent_value: f64) -> Result<Gaussian, ParamError> {
        Gaussian::new(self.a * parent_value + self.b, self.var)
    }

    /// Composes two affine-Gaussian links: if `y | x` uses `self` and
    /// `z | y` uses `next`, the composite `z | x` link.
    ///
    /// Used by graph compaction: collapsing a marginalized-but-unreferenced
    /// chain node fuses its incoming and outgoing links.
    pub fn compose(&self, next: &AffineGaussian) -> AffineGaussian {
        AffineGaussian {
            a: next.a * self.a,
            b: next.a * self.b + next.b,
            var: next.a * next.a * self.var + next.var,
        }
    }
}

/// Beta–Bernoulli conjugate pair: `child | p ~ Bernoulli(p)`, `p ~ Beta`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BetaBernoulliLink;

impl BetaBernoulliLink {
    /// Child's marginal: `Bernoulli(alpha / (alpha + beta))`.
    ///
    /// # Errors
    ///
    /// [`ParamError`] if the parent mean is not a valid probability (only
    /// possible for corrupted shape parameters).
    pub fn marginalize(&self, parent: Beta) -> Result<Bernoulli, ParamError> {
        Bernoulli::new(parent.alpha() / (parent.alpha() + parent.beta()))
    }

    /// Parent's posterior after observing the child.
    ///
    /// # Errors
    ///
    /// [`ParamError`] if the incremented shapes are not representable.
    pub fn condition(&self, parent: Beta, obs: bool) -> Result<Beta, ParamError> {
        if obs {
            Beta::new(parent.alpha() + 1.0, parent.beta())
        } else {
            Beta::new(parent.alpha(), parent.beta() + 1.0)
        }
    }

    /// Child's conditional for a realized parent value.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the realized parent value is outside
    /// `[0, 1]` and therefore not a valid Bernoulli probability.
    pub fn instantiate(&self, parent_value: f64) -> Result<Bernoulli, ParamError> {
        Bernoulli::new(parent_value)
    }
}

/// Beta–Binomial conjugate pair: `child | p ~ Binomial(n, p)`, `p ~ Beta`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BetaBinomialLink {
    /// Number of trials of the binomial child.
    pub n: u64,
}

impl BetaBinomialLink {
    /// Child's marginal: `BetaBinomial(n, alpha, beta)`.
    ///
    /// # Errors
    ///
    /// [`ParamError`] if the parent shapes are not positive and finite.
    pub fn marginalize(&self, parent: Beta) -> Result<BetaBinomial, ParamError> {
        BetaBinomial::new(self.n, parent.alpha(), parent.beta())
    }

    /// Parent's posterior after observing `k` successes.
    ///
    /// # Errors
    ///
    /// [`ParamError`] if `k > n` (an out-of-support observation) or the
    /// incremented shapes are not representable.
    pub fn condition(&self, parent: Beta, k: u64) -> Result<Beta, ParamError> {
        if k > self.n {
            return Err(ParamError::new(format!(
                "observed count {k} exceeds trials {}",
                self.n
            )));
        }
        Beta::new(
            parent.alpha() + k as f64,
            parent.beta() + (self.n - k) as f64,
        )
    }
}

/// Gamma–Poisson conjugate pair:
/// `child | lambda ~ Poisson(scale · lambda)`, `lambda ~ Gamma(shape, rate)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaPoissonLink {
    /// Exposure/scale multiplier applied to the rate.
    pub scale: f64,
}

impl GammaPoissonLink {
    /// Creates the link with the given positive exposure.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `scale > 0`.
    pub fn new(scale: f64) -> Result<Self, ParamError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(ParamError::new(format!(
                "gamma-poisson scale must be positive, got {scale}"
            )));
        }
        Ok(GammaPoissonLink { scale })
    }

    /// Child's marginal: `NB(shape, rate / (rate + scale))`.
    ///
    /// # Errors
    ///
    /// [`ParamError`] if the success probability falls outside `(0, 1]`
    /// (only possible for corrupted parent parameters).
    pub fn marginalize(&self, parent: Gamma) -> Result<NegativeBinomial, ParamError> {
        NegativeBinomial::new(parent.shape(), parent.rate() / (parent.rate() + self.scale))
    }

    /// Parent's posterior after observing `k` events:
    /// `Gamma(shape + k, rate + scale)`.
    ///
    /// # Errors
    ///
    /// [`ParamError`] if the incremented parameters are not representable.
    pub fn condition(&self, parent: Gamma, k: u64) -> Result<Gamma, ParamError> {
        Gamma::new(parent.shape() + k as f64, parent.rate() + self.scale)
    }
}

/// Gamma–Exponential conjugate pair:
/// `child | lambda ~ Exponential(scale · lambda)`, `lambda ~ Gamma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaExponentialLink {
    /// Rate multiplier applied to the parent.
    pub scale: f64,
}

impl GammaExponentialLink {
    /// Creates the link with the given positive rate multiplier.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `scale > 0`.
    pub fn new(scale: f64) -> Result<Self, ParamError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(ParamError::new(format!(
                "gamma-exponential scale must be positive, got {scale}"
            )));
        }
        Ok(GammaExponentialLink { scale })
    }

    /// Child's marginal: `Lomax(shape, rate / scale)`.
    ///
    /// # Errors
    ///
    /// [`ParamError`] if the derived parameters are not positive and
    /// finite.
    pub fn marginalize(&self, parent: Gamma) -> Result<Lomax, ParamError> {
        Lomax::new(parent.shape(), parent.rate() / self.scale)
    }

    /// Parent's posterior after observing waiting time `x`:
    /// `Gamma(shape + 1, rate + scale·x)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for negative observations (outside the
    /// exponential support).
    pub fn condition(&self, parent: Gamma, x: f64) -> Result<Gamma, ParamError> {
        if !(x.is_finite() && x >= 0.0) {
            return Err(ParamError::new(format!(
                "exponential observation must be non-negative, got {x}"
            )));
        }
        Gamma::new(parent.shape() + 1.0, parent.rate() + self.scale * x)
    }

    /// Child's conditional once the parent realized to `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] for non-positive realized rates.
    pub fn instantiate(&self, lambda: f64) -> Result<Exponential, ParamError> {
        Exponential::new(self.scale * lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Distribution, Moments};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn affine_gaussian_marginalize_identity_link() {
        let link = AffineGaussian::new(1.0, 0.0, 1.0).unwrap();
        let m = link
            .marginalize(Gaussian::new(0.0, 100.0).unwrap())
            .unwrap();
        assert!((m.mean_param() - 0.0).abs() < 1e-12);
        assert!((m.var_param() - 101.0).abs() < 1e-12);
    }

    #[test]
    fn affine_gaussian_condition_is_kalman_update() {
        // Prior N(0, 100), obs noise 1, observation 5:
        // K = 100/101, post mean = K*5, post var = 100/101.
        let link = AffineGaussian::new(1.0, 0.0, 1.0).unwrap();
        let post = link
            .condition(Gaussian::new(0.0, 100.0).unwrap(), 5.0)
            .unwrap();
        assert!((post.mean_param() - 500.0 / 101.0).abs() < 1e-10);
        assert!((post.var_param() - 100.0 / 101.0).abs() < 1e-10);
    }

    #[test]
    fn affine_gaussian_condition_with_offset_and_scale() {
        // child = 2θ + 1 + noise(var 4), prior θ ~ N(3, 2), obs 10.
        let link = AffineGaussian::new(2.0, 1.0, 4.0).unwrap();
        let post = link
            .condition(Gaussian::new(3.0, 2.0).unwrap(), 10.0)
            .unwrap();
        let prec = 1.0 / 2.0 + 4.0 / 4.0;
        let var = 1.0 / prec;
        let mean = var * (3.0 / 2.0 + 2.0 * 9.0 / 4.0);
        assert!((post.var_param() - var).abs() < 1e-12);
        assert!((post.mean_param() - mean).abs() < 1e-12);
    }

    #[test]
    fn affine_gaussian_compose_matches_two_step_marginalization() {
        let first = AffineGaussian::new(2.0, 1.0, 0.5).unwrap();
        let second = AffineGaussian::new(-1.5, 3.0, 2.0).unwrap();
        let fused = first.compose(&second);
        let prior = Gaussian::new(0.7, 1.3).unwrap();
        let two_step = second
            .marginalize(first.marginalize(prior).unwrap())
            .unwrap();
        let one_step = fused.marginalize(prior).unwrap();
        assert!((two_step.mean_param() - one_step.mean_param()).abs() < 1e-12);
        assert!((two_step.var_param() - one_step.var_param()).abs() < 1e-12);
    }

    #[test]
    fn beta_bernoulli_round_trip() {
        let link = BetaBernoulliLink;
        let prior = Beta::new(1.0, 1.0).unwrap();
        let marg = link.marginalize(prior).unwrap();
        assert!((marg.p() - 0.5).abs() < 1e-12);
        let post = link.condition(prior, true).unwrap();
        assert_eq!((post.alpha(), post.beta()), (2.0, 1.0));
        let post = link.condition(post, false).unwrap();
        assert_eq!((post.alpha(), post.beta()), (2.0, 2.0));
    }

    #[test]
    fn beta_binomial_condition_counts() {
        let link = BetaBinomialLink { n: 10 };
        let post = link.condition(Beta::new(2.0, 3.0).unwrap(), 7).unwrap();
        assert_eq!((post.alpha(), post.beta()), (9.0, 6.0));
    }

    #[test]
    fn beta_binomial_rejects_excess_count() {
        let link = BetaBinomialLink { n: 5 };
        let err = link.condition(Beta::new(1.0, 1.0).unwrap(), 6);
        assert!(err.is_err());
        assert!(format!("{}", err.unwrap_err()).contains("exceeds trials"));
    }

    #[test]
    fn gamma_poisson_posterior() {
        let link = GammaPoissonLink::new(1.0).unwrap();
        let post = link.condition(Gamma::new(2.0, 3.0).unwrap(), 4).unwrap();
        assert_eq!((post.shape(), post.rate()), (6.0, 4.0));
        let marg = link.marginalize(Gamma::new(2.0, 3.0).unwrap()).unwrap();
        assert!((marg.p() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gamma_exponential_round_trip() {
        let link = GammaExponentialLink::new(2.0).unwrap();
        let prior = Gamma::new(3.0, 4.0).unwrap();
        let marg = link.marginalize(prior).unwrap();
        assert_eq!((marg.shape(), marg.scale()), (3.0, 2.0));
        let post = link.condition(prior, 1.5).unwrap();
        assert_eq!((post.shape(), post.rate()), (4.0, 7.0));
        assert!(link.condition(prior, -1.0).is_err());
        let child = link.instantiate(0.5).unwrap();
        assert_eq!(child.rate(), 1.0);
    }

    /// Monte-Carlo check: the analytic marginal of the affine-Gaussian link
    /// matches simulation of the generative process.
    #[test]
    fn affine_gaussian_marginal_matches_simulation() {
        let prior = Gaussian::new(1.0, 4.0).unwrap();
        let link = AffineGaussian::new(0.5, 2.0, 1.0).unwrap();
        let analytic = link.marginalize(prior).unwrap();
        let mut rng = SmallRng::seed_from_u64(33);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let theta = prior.sample(&mut rng);
            let x = link.instantiate(theta).unwrap().sample(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let m = sum / n as f64;
        let v = sum2 / n as f64 - m * m;
        assert!((m - analytic.mean()).abs() < 0.02, "mean {m}");
        assert!((v - analytic.variance()).abs() < 0.05, "var {v}");
    }
}
