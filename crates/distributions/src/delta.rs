//! Dirac delta distribution.

use crate::traits::{Distribution, Moments};
use rand::Rng;

/// Dirac delta: all mass on a single value.
///
/// Realized random variables in the delayed-sampling graph report their
/// distribution as a delta; the probabilistic lifting of a deterministic
/// expression in the paper's semantics (Fig. 9) is also a Dirac measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Delta<T>(pub T);

impl<T: Clone + PartialEq> Distribution for Delta<T> {
    type Item = T;

    fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> T {
        self.0.clone()
    }

    fn log_pdf(&self, x: &T) -> f64 {
        if *x == self.0 {
            0.0
        } else {
            f64::NEG_INFINITY
        }
    }
}

impl Moments for Delta<f64> {
    fn mean(&self) -> f64 {
        self.0
    }

    fn variance(&self) -> f64 {
        0.0
    }
}

impl<T: std::fmt::Display> std::fmt::Display for Delta<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "δ({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sample_returns_the_point() {
        let d = Delta(42);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), 42);
    }

    #[test]
    fn log_pdf_is_indicator() {
        let d = Delta(1.5);
        assert_eq!(d.log_pdf(&1.5), 0.0);
        assert_eq!(d.log_pdf(&1.6), f64::NEG_INFINITY);
    }

    #[test]
    fn moments_are_degenerate() {
        let d = Delta(3.0);
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.variance(), 0.0);
    }
}
