//! Exponential distribution.

use crate::traits::{Distribution, Moments, ParamError};
use rand::Rng;

/// Exponential distribution with rate `r` (density `r e^{-r x}` on
/// `x >= 0`) — the inter-arrival-time companion of [`crate::Poisson`],
/// conjugate to a Gamma-distributed rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates `Exponential(rate)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `rate` is strictly positive and
    /// finite.
    pub fn new(rate: f64) -> Result<Self, ParamError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ParamError::new(format!(
                "exponential rate must be positive and finite, got {rate}"
            )));
        }
        Ok(Exponential { rate })
    }

    /// Rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }
}

impl Distribution for Exponential {
    type Item = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF on a (0, 1] uniform.
        let u: f64 = 1.0 - rng.gen_range(0.0f64..1.0);
        -u.ln() / self.rate
    }

    fn log_pdf(&self, x: &f64) -> f64 {
        if *x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate.ln() - self.rate * x
        }
    }
}

impl Moments for Exponential {
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
}

impl std::fmt::Display for Exponential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Exp({})", self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
        assert!(Exponential::new(2.0).is_ok());
    }

    #[test]
    fn density_and_cdf() {
        let d = Exponential::new(2.0).unwrap();
        assert!((d.log_pdf(&0.0) - 2.0f64.ln()).abs() < 1e-12);
        assert_eq!(d.log_pdf(&-0.1), f64::NEG_INFINITY);
        assert!((d.cdf(f64::INFINITY) - 1.0).abs() < 1e-12);
        assert!((d.cdf(0.5) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn memorylessness_of_cdf() {
        // P(X > s + t | X > s) = P(X > t).
        let d = Exponential::new(1.3).unwrap();
        let (s, t) = (0.7, 1.1);
        let lhs = (1.0 - d.cdf(s + t)) / (1.0 - d.cdf(s));
        let rhs = 1.0 - d.cdf(t);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn sample_moments_match() {
        let d = Exponential::new(0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        assert!((m - 2.0).abs() < 0.03, "mean {m}");
        assert!((v - 4.0).abs() < 0.15, "variance {v}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }
}
