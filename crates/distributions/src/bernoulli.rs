//! Bernoulli distribution.

use crate::traits::{Distribution, Moments, ParamError};
use rand::Rng;

/// Bernoulli distribution over `bool` with success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates `Bernoulli(p)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `0 <= p <= 1`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
            return Err(ParamError::new(format!(
                "bernoulli probability must be in [0, 1], got {p}"
            )));
        }
        Ok(Bernoulli { p })
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distribution for Bernoulli {
    type Item = bool;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_range(0.0f64..1.0) < self.p
    }

    fn log_pdf(&self, x: &bool) -> f64 {
        if *x {
            self.p.ln()
        } else {
            (1.0 - self.p).ln()
        }
    }
}

impl Moments for Bernoulli {
    fn mean(&self) -> f64 {
        self.p
    }

    fn variance(&self) -> f64 {
        self.p * (1.0 - self.p)
    }
}

impl std::fmt::Display for Bernoulli {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bernoulli({})", self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(Bernoulli::new(1.1).is_err());
        assert!(Bernoulli::new(f64::NAN).is_err());
        assert!(Bernoulli::new(0.0).is_ok());
        assert!(Bernoulli::new(1.0).is_ok());
    }

    #[test]
    fn log_pdf_values() {
        let d = Bernoulli::new(0.25).unwrap();
        assert!((d.log_pdf(&true) - 0.25f64.ln()).abs() < 1e-12);
        assert!((d.log_pdf(&false) - 0.75f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let always = Bernoulli::new(1.0).unwrap();
        assert_eq!(always.log_pdf(&false), f64::NEG_INFINITY);
        assert_eq!(always.log_pdf(&true), 0.0);
    }

    #[test]
    fn sample_frequency_matches() {
        let d = Bernoulli::new(0.3).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let k = (0..n).filter(|_| d.sample(&mut rng)).count();
        let f = k as f64 / n as f64;
        assert!((f - 0.3).abs() < 0.01, "frequency {f}");
    }
}
