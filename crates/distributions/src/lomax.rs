//! Lomax (Pareto type II) distribution.

use crate::traits::{Distribution, Moments, ParamError};
use rand::Rng;

/// Lomax distribution with shape `k` and scale `s`:
/// density `(k/s)·(1 + x/s)^{-(k+1)}` on `x >= 0`.
///
/// This is the closed-form marginal of an `Exponential(lambda)` observation
/// with a `Gamma(k, rate)` prior on `lambda` (`s = rate`), which is why the
/// delayed sampler produces it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lomax {
    shape: f64,
    scale: f64,
}

impl Lomax {
    /// Creates `Lomax(shape, scale)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless both parameters are strictly positive
    /// and finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self, ParamError> {
        if !(shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0) {
            return Err(ParamError::new(format!(
                "lomax parameters must be positive and finite, got ({shape}, {scale})"
            )));
        }
        Ok(Lomax { shape, scale })
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `s`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Distribution for Lomax {
    type Item = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: F(x) = 1 - (1 + x/s)^{-k}.
        let u: f64 = 1.0 - rng.gen_range(0.0f64..1.0);
        self.scale * (u.powf(-1.0 / self.shape) - 1.0)
    }

    fn log_pdf(&self, x: &f64) -> f64 {
        if *x < 0.0 {
            return f64::NEG_INFINITY;
        }
        self.shape.ln() - self.scale.ln() - (self.shape + 1.0) * (1.0 + x / self.scale).ln()
    }
}

impl Moments for Lomax {
    /// Mean `s / (k - 1)` for `k > 1`; infinite otherwise.
    fn mean(&self) -> f64 {
        if self.shape > 1.0 {
            self.scale / (self.shape - 1.0)
        } else {
            f64::INFINITY
        }
    }

    /// Variance for `k > 2`; infinite otherwise.
    fn variance(&self) -> f64 {
        if self.shape > 2.0 {
            let k = self.shape;
            self.scale * self.scale * k / ((k - 1.0) * (k - 1.0) * (k - 2.0))
        } else {
            f64::INFINITY
        }
    }
}

impl std::fmt::Display for Lomax {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Lomax({}, {})", self.shape, self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Lomax::new(0.0, 1.0).is_err());
        assert!(Lomax::new(1.0, 0.0).is_err());
        assert!(Lomax::new(2.0, 3.0).is_ok());
    }

    #[test]
    fn density_integrates_to_one() {
        // Numeric trapezoid over a long range.
        let d = Lomax::new(3.0, 2.0).unwrap();
        let (mut acc, dx) = (0.0, 0.001);
        let mut x = 0.0;
        while x < 400.0 {
            acc += d.pdf(&x) * dx;
            x += dx;
        }
        assert!((acc - 1.0).abs() < 1e-3, "integral {acc}");
    }

    #[test]
    fn support_is_nonnegative() {
        let d = Lomax::new(2.0, 1.0).unwrap();
        assert_eq!(d.log_pdf(&-0.5), f64::NEG_INFINITY);
        assert!((d.log_pdf(&0.0) - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn sample_mean_matches_for_finite_moments() {
        let d = Lomax::new(4.0, 6.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 300_000;
        let m: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn matches_gamma_exponential_mixture() {
        // Lomax(k, r) must equal ∫ Exp(λ) Gamma(λ; k, r) dλ.
        use crate::exponential::Exponential;
        use crate::gamma::Gamma;
        let (k, r) = (3.0, 2.0);
        let prior = Gamma::new(k, r).unwrap();
        let lomax = Lomax::new(k, r).unwrap();
        let mut rng = SmallRng::seed_from_u64(14);
        // Monte-Carlo estimate of the mixture density at a few points.
        let n = 200_000;
        for x in [0.1, 0.5, 1.5, 4.0] {
            let mut acc = 0.0;
            for _ in 0..n {
                let lam = prior.sample(&mut rng);
                acc += Exponential::new(lam).unwrap().pdf(&x);
            }
            let mc = acc / n as f64;
            assert!(
                (mc - lomax.pdf(&x)).abs() < 0.01,
                "x={x}: {mc} vs {}",
                lomax.pdf(&x)
            );
        }
    }
}
