//! Continuous uniform distribution.

use crate::traits::{Distribution, Moments, ParamError};
use rand::Rng;

/// Uniform distribution on the half-open interval `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates `Uniform(lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `lo < hi` and both bounds are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, ParamError> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(ParamError::new(format!(
                "uniform bounds must be finite with lo < hi, got [{lo}, {hi})"
            )));
        }
        Ok(Uniform { lo, hi })
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Distribution for Uniform {
    type Item = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.lo..self.hi)
    }

    fn log_pdf(&self, x: &f64) -> f64 {
        if *x < self.lo || *x >= self.hi {
            f64::NEG_INFINITY
        } else {
            -(self.hi - self.lo).ln()
        }
    }
}

impl Moments for Uniform {
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn variance(&self) -> f64 {
        let w = self.hi - self.lo;
        w * w / 12.0
    }
}

impl std::fmt::Display for Uniform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Uniform({}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NEG_INFINITY, 0.0).is_err());
        assert!(Uniform::new(-1.0, 1.0).is_ok());
    }

    #[test]
    fn density_and_support() {
        let d = Uniform::new(0.0, 4.0).unwrap();
        assert!((d.log_pdf(&1.0) - (-(4.0f64).ln())).abs() < 1e-12);
        assert_eq!(d.log_pdf(&-0.1), f64::NEG_INFINITY);
        assert_eq!(d.log_pdf(&4.0), f64::NEG_INFINITY);
    }

    #[test]
    fn moments() {
        let d = Uniform::new(2.0, 6.0).unwrap();
        assert!((d.mean() - 4.0).abs() < 1e-12);
        assert!((d.variance() - 16.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn samples_stay_in_range() {
        let d = Uniform::new(-3.0, -1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((-3.0..-1.0).contains(&x));
        }
    }
}
