//! Multivariate Gaussian distribution and its matrix-affine conjugacy.
//!
//! This is the extension the authors' own implementation uses for the
//! tracker examples: a latent state *vector* (e.g. position‖velocity) with
//! linear-Gaussian dynamics and observations, conditioned exactly via the
//! matrix Kalman updates.

use crate::gaussian::Gaussian;
use crate::linalg::{Matrix, Vector};
use crate::traits::{Distribution, ParamError};
use rand::Rng;

/// Multivariate Gaussian `N(mean, cov)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MvGaussian {
    mean: Vector,
    cov: Matrix,
    chol: Matrix,
}

impl MvGaussian {
    /// Creates `N(mean, cov)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `cov` is a symmetric positive-definite
    /// `d × d` matrix matching `mean`'s dimension.
    pub fn new(mean: Vector, cov: Matrix) -> Result<Self, ParamError> {
        if cov.rows() != cov.cols() || cov.rows() != mean.dim() {
            return Err(ParamError::new(format!(
                "covariance must be {0}x{0} for a {0}-dimensional mean, got {1}x{2}",
                mean.dim(),
                cov.rows(),
                cov.cols()
            )));
        }
        let chol = cov.cholesky()?;
        Ok(MvGaussian { mean, cov, chol })
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.mean.dim()
    }

    /// Mean vector.
    pub fn mean(&self) -> &Vector {
        &self.mean
    }

    /// Covariance matrix.
    pub fn cov(&self) -> &Matrix {
        &self.cov
    }

    /// The marginal of one coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn component(&self, i: usize) -> Gaussian {
        Gaussian::new(self.mean.get(i), self.cov.get(i, i))
            .expect("positive-definite covariance has positive diagonal")
    }
}

impl Distribution for MvGaussian {
    type Item = Vector;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vector {
        let z = Vector::new(
            (0..self.dim())
                .map(|_| Gaussian::standard().sample(rng))
                .collect(),
        );
        self.mean.add(&self.chol.mul_vec(&z))
    }

    fn log_pdf(&self, x: &Vector) -> f64 {
        assert_eq!(x.dim(), self.dim(), "dimension mismatch");
        let d = x.sub(&self.mean);
        let sol = self
            .cov
            .solve_spd(&d)
            .expect("covariance validated at construction");
        let maha = d.dot(&sol);
        let logdet = self
            .cov
            .log_det_spd()
            .expect("covariance validated at construction");
        -0.5 * (maha + logdet + self.dim() as f64 * (2.0 * std::f64::consts::PI).ln())
    }
}

/// Matrix-affine link `child | parent ~ N(A·parent + b, Σ)` with a
/// multivariate-Gaussian parent: the conjugacy behind exact multivariate
/// Kalman filtering.
#[derive(Debug, Clone, PartialEq)]
pub struct MvAffineGaussian {
    /// Observation/transition matrix `A` (`m × d`).
    pub a: Matrix,
    /// Offset `b` (`m`).
    pub b: Vector,
    /// Conditional covariance `Σ` (`m × m`).
    pub cov: Matrix,
}

impl MvAffineGaussian {
    /// Creates the link, validating shapes and positive-definiteness.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] on shape mismatches or a non-SPD `Σ`.
    pub fn new(a: Matrix, b: Vector, cov: Matrix) -> Result<Self, ParamError> {
        if a.rows() != b.dim() || cov.rows() != cov.cols() || cov.rows() != a.rows() {
            return Err(ParamError::new(format!(
                "affine link shapes mismatch: A is {}x{}, b is {}, cov is {}x{}",
                a.rows(),
                a.cols(),
                b.dim(),
                cov.rows(),
                cov.cols()
            )));
        }
        cov.cholesky()?;
        Ok(MvAffineGaussian { a, b, cov })
    }

    /// Child's marginal: `N(A m + b, A S Aᵀ + Σ)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if the parent's dimension does not match
    /// `A`'s columns.
    pub fn marginalize(&self, parent: &MvGaussian) -> Result<MvGaussian, ParamError> {
        if parent.dim() != self.a.cols() {
            return Err(ParamError::new("parent dimension does not match the link"));
        }
        let mean = self.a.mul_vec(parent.mean()).add(&self.b);
        let cov = self
            .a
            .mul(parent.cov())
            .mul(&self.a.transpose())
            .add(&self.cov)
            .symmetrized();
        MvGaussian::new(mean, cov)
    }

    /// Parent's posterior after observing `child = obs` (the matrix
    /// Kalman update with gain `K = S Aᵀ (A S Aᵀ + Σ)⁻¹`).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] on dimension mismatches.
    pub fn condition(&self, parent: &MvGaussian, obs: &Vector) -> Result<MvGaussian, ParamError> {
        if obs.dim() != self.a.rows() || parent.dim() != self.a.cols() {
            return Err(ParamError::new(
                "observation dimension does not match the link",
            ));
        }
        let s = parent.cov();
        let innovation_cov = self
            .a
            .mul(s)
            .mul(&self.a.transpose())
            .add(&self.cov)
            .symmetrized();
        // K = S Aᵀ V⁻¹ computed as (V⁻¹ (A S))ᵀ.
        let gain = innovation_cov.solve_spd_matrix(&self.a.mul(s))?.transpose();
        let residual = obs.sub(&self.a.mul_vec(parent.mean()).add(&self.b));
        let mean = parent.mean().add(&gain.mul_vec(&residual));
        let eye = Matrix::identity(parent.dim());
        let cov = eye.sub(&gain.mul(&self.a)).mul(s).symmetrized();
        MvGaussian::new(mean, cov)
    }

    /// Child's concrete conditional once the parent realized to `value`.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] on a dimension mismatch.
    pub fn instantiate(&self, value: &Vector) -> Result<MvGaussian, ParamError> {
        if value.dim() != self.a.cols() {
            return Err(ParamError::new(
                "parent value dimension does not match the link",
            ));
        }
        MvGaussian::new(self.a.mul_vec(value).add(&self.b), self.cov.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn standard2() -> MvGaussian {
        MvGaussian::new(Vector::zeros(2), Matrix::identity(2)).unwrap()
    }

    #[test]
    fn rejects_bad_shapes_and_indefinite_cov() {
        assert!(MvGaussian::new(Vector::zeros(2), Matrix::identity(3)).is_err());
        let indefinite = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(MvGaussian::new(Vector::zeros(2), indefinite).is_err());
    }

    #[test]
    fn log_pdf_matches_independent_product() {
        let d = standard2();
        let x = Vector::new(vec![0.3, -1.2]);
        let expected = Gaussian::standard().log_pdf(&0.3) + Gaussian::standard().log_pdf(&-1.2);
        assert!((d.log_pdf(&x) - expected).abs() < 1e-12);
    }

    #[test]
    fn sample_moments() {
        let cov = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let d = MvGaussian::new(Vector::new(vec![1.0, -1.0]), cov).unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        let n = 100_000;
        let (mut m0, mut m1, mut c01) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = d.sample(&mut rng);
            m0 += x.get(0);
            m1 += x.get(1);
            c01 += (x.get(0) - 1.0) * (x.get(1) + 1.0);
        }
        assert!((m0 / n as f64 - 1.0).abs() < 0.02);
        assert!((m1 / n as f64 + 1.0).abs() < 0.02);
        assert!((c01 / n as f64 - 0.5).abs() < 0.03);
    }

    #[test]
    fn marginalize_matches_formula() {
        let link = MvAffineGaussian::new(
            Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]]),
            Vector::zeros(2),
            Matrix::identity(2).scale(0.01),
        )
        .unwrap();
        let m = link.marginalize(&standard2()).unwrap();
        // A I Aᵀ + 0.01 I
        assert!((m.cov().get(0, 0) - 1.02).abs() < 1e-12);
        assert!((m.cov().get(0, 1) - 0.1).abs() < 1e-12);
        assert!((m.cov().get(1, 1) - 1.01).abs() < 1e-12);
    }

    #[test]
    fn condition_reduces_to_scalar_kalman_in_1d() {
        let prior =
            MvGaussian::new(Vector::new(vec![0.0]), Matrix::from_rows(&[&[100.0]])).unwrap();
        let link = MvAffineGaussian::new(
            Matrix::identity(1),
            Vector::zeros(1),
            Matrix::from_rows(&[&[1.0]]),
        )
        .unwrap();
        let post = link.condition(&prior, &Vector::new(vec![5.0])).unwrap();
        assert!((post.mean().get(0) - 500.0 / 101.0).abs() < 1e-10);
        assert!((post.cov().get(0, 0) - 100.0 / 101.0).abs() < 1e-10);
    }

    #[test]
    fn partial_observation_conditions_the_unobserved_coordinate() {
        // State (p, v) with correlated prior; observe p only; v updates
        // through the correlation.
        let prior = MvGaussian::new(
            Vector::zeros(2),
            Matrix::from_rows(&[&[1.0, 0.8], &[0.8, 1.0]]),
        )
        .unwrap();
        let observe_p = MvAffineGaussian::new(
            Matrix::from_rows(&[&[1.0, 0.0]]),
            Vector::zeros(1),
            Matrix::from_rows(&[&[0.01]]),
        )
        .unwrap();
        let post = observe_p
            .condition(&prior, &Vector::new(vec![2.0]))
            .unwrap();
        assert!((post.mean().get(0) - 2.0).abs() < 0.05);
        // v moves toward 0.8 × 2.0.
        assert!((post.mean().get(1) - 1.6).abs() < 0.05, "{:?}", post.mean());
        assert!(post.cov().get(1, 1) < 1.0);
    }

    #[test]
    fn condition_then_marginalize_is_consistent_with_joint() {
        // Monte-Carlo check of the full update.
        let prior = MvGaussian::new(
            Vector::new(vec![1.0, -0.5]),
            Matrix::from_rows(&[&[2.0, 0.3], &[0.3, 1.5]]),
        )
        .unwrap();
        let link = MvAffineGaussian::new(
            Matrix::from_rows(&[&[0.5, 1.0]]),
            Vector::new(vec![0.2]),
            Matrix::from_rows(&[&[0.5]]),
        )
        .unwrap();
        let obs = Vector::new(vec![1.2]);
        let post = link.condition(&prior, &obs).unwrap();
        // Importance-sampling reference.
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 200_000;
        let (mut w_sum, mut m0, mut m1) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = prior.sample(&mut rng);
            let like = link.instantiate(&x).unwrap().log_pdf(&obs).exp();
            w_sum += like;
            m0 += like * x.get(0);
            m1 += like * x.get(1);
        }
        assert!((m0 / w_sum - post.mean().get(0)).abs() < 0.02);
        assert!((m1 / w_sum - post.mean().get(1)).abs() < 0.02);
    }

    #[test]
    fn instantiate_uses_parent_value() {
        let link = MvAffineGaussian::new(
            Matrix::identity(2),
            Vector::new(vec![1.0, 1.0]),
            Matrix::identity(2),
        )
        .unwrap();
        let d = link.instantiate(&Vector::new(vec![2.0, 3.0])).unwrap();
        assert_eq!(d.mean().as_slice(), &[3.0, 4.0]);
    }
}
